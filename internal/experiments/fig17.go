package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"sqlancerpp/internal/baseline"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/feature"
)

// Fig1Row is one tool of the LOC comparison (paper Figure 1).
type Fig1Row struct {
	Tool       string
	PerDBMSLOC int
	Source     string
}

// Fig1 reproduces the motivation figure: the per-DBMS lines of code that
// existing testing tools require, against this platform's per-dialect
// adapter cost. The four published numbers are the paper's; the last two
// rows are measured from this repository.
func Fig1() ([]Fig1Row, string, error) {
	rows := []Fig1Row{
		{"SQLancer", 3665, "paper Figure 1 (median of 22 generators)"},
		{"Squirrel", 7909, "paper Figure 1"},
		{"SQLsmith", 268, "paper Figure 1"},
		{"EET", 574, "paper Figure 1"},
	}
	adapterLOC, engineLOC, err := measureLOC()
	if err != nil {
		return rows, "", err
	}
	rows = append(rows,
		Fig1Row{"SQLancer++ (this repo, per-dialect adapter)", adapterLOC,
			"measured: internal/dialect/dialects.go ÷ registered dialects"},
		Fig1Row{"hand-written generator equivalent (this repo)", engineLOC,
			"measured: internal/baseline + internal/core/gen"},
	)
	t := &table{header: []string{"Tool", "per-DBMS LOC", "source"}}
	for _, r := range rows {
		t.add(r.Tool, itoa(r.PerDBMSLOC), r.Source)
	}
	return rows, t.render(
		"Figure 1 — per-DBMS implementation effort (LOC)\n" +
			"(paper: adapting SQLancer's PostgreSQL generator to CrateDB still changed 1,296 LOC;\n" +
			" SQLancer++ needs ~16 LOC per DBMS)"), nil
}

// repoRoot locates the repository from this source file's path.
func repoRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("experiments: cannot locate source path")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file))), nil
}

// countLOC counts non-blank, non-comment-only lines of a file.
func countLOC(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "//") {
			continue
		}
		n++
	}
	return n, nil
}

func measureLOC() (adapterPerDBMS, generatorTotal int, err error) {
	root, err := repoRoot()
	if err != nil {
		return 0, 0, err
	}
	dialects, err := countLOC(filepath.Join(root, "internal", "dialect", "dialects.go"))
	if err != nil {
		return 0, 0, err
	}
	adapterPerDBMS = dialects / len(dialect.Names())
	for _, dir := range []string{
		filepath.Join(root, "internal", "baseline"),
		filepath.Join(root, "internal", "core", "gen"),
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return 0, 0, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") ||
				strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			n, err := countLOC(filepath.Join(dir, e.Name()))
			if err != nil {
				return 0, 0, err
			}
			generatorTotal += n
		}
	}
	return adapterPerDBMS, generatorTotal, nil
}

// Fig7Result holds the Venn-region counts of scalar functions and
// operators shared between the adaptive grammar and the SQLite and
// PostgreSQL baseline generators (paper Figure 7).
type Fig7Result struct {
	FuncRegions map[string]int
	OpRegions   map[string]int
	Rendered    string
}

// Fig7 computes the feature-overlap study. The universal grammar is the
// adaptive generator's feature set; the baseline generators additionally
// know their dialect's specific functions (and only its operators).
func Fig7() *Fig7Result {
	universalFn := map[string]bool{}
	for _, f := range feature.Functions {
		universalFn[f] = true
	}
	sqliteFn := map[string]bool{}
	pgFn := map[string]bool{}
	aggr := map[string]bool{}
	for _, a := range feature.Aggregates {
		aggr[a] = true
	}
	for _, f := range dialect.MustGet("sqlite").FunctionList() {
		if !aggr[f] {
			sqliteFn[f] = true
		}
	}
	for _, f := range dialect.MustGet("postgresql").FunctionList() {
		if !aggr[f] {
			pgFn[f] = true
		}
	}

	universalOp := map[string]bool{}
	for _, o := range feature.BinaryOperators {
		universalOp[o] = true
	}
	universalOp["~"] = true
	for _, o := range feature.ExprForms {
		universalOp[o] = true
	}
	sqliteOp := opSet("sqlite")
	pgOp := opSet("postgresql")

	res := &Fig7Result{
		FuncRegions: venn(universalFn, sqliteFn, pgFn),
		OpRegions:   venn(universalOp, sqliteOp, pgOp),
	}
	var sb strings.Builder
	sb.WriteString("Figure 7 — feature overlap: SQLancer++ grammar vs SQLite/PostgreSQL baseline generators\n")
	sb.WriteString("(regions: A=SQLancer++, B=SQLite gen, C=PostgreSQL gen)\n")
	sb.WriteString("scalar functions: ")
	sb.WriteString(renderRegions(res.FuncRegions))
	sb.WriteString("\noperators:        ")
	sb.WriteString(renderRegions(res.OpRegions))
	sb.WriteByte('\n')
	res.Rendered = sb.String()
	return res
}

func opSet(name string) map[string]bool {
	out := map[string]bool{}
	for _, o := range dialect.MustGet(name).OperatorList() {
		out[o] = true
	}
	return out
}

// venn computes the seven region sizes of three sets.
func venn(a, b, c map[string]bool) map[string]int {
	regions := map[string]int{}
	all := map[string]bool{}
	for _, s := range []map[string]bool{a, b, c} {
		for k := range s {
			all[k] = true
		}
	}
	for k := range all {
		key := ""
		if a[k] {
			key += "A"
		}
		if b[k] {
			key += "B"
		}
		if c[k] {
			key += "C"
		}
		regions[key]++
	}
	return regions
}

func renderRegions(r map[string]int) string {
	order := []string{"A", "B", "C", "AB", "AC", "BC", "ABC"}
	var parts []string
	for _, k := range order {
		parts = append(parts, fmt.Sprintf("%s=%d", k, r[k]))
	}
	return strings.Join(parts, " ")
}

// Table6Row is one feature-type count of the grammar (paper Table 6).
type Table6Row struct {
	FeatureType string
	Count       int
	Examples    string
}

// Table6 counts the adaptive grammar's features by type.
func Table6() ([]Table6Row, string) {
	rows := []Table6Row{
		{"Statement (core)", 6, "CREATE TABLE, CREATE INDEX, CREATE VIEW, INSERT, ANALYZE, SELECT"},
		{"Statement (extensions)", len(feature.Statements) - 6, "UPDATE, DELETE, ALTER TABLE, REFRESH TABLE"},
		{"Clause & keyword", len(feature.Clauses), "RIGHT JOIN, SUBQUERY, DISTINCT"},
		{"Function", len(feature.Functions), "NULLIF, SIN, REPLACE"},
		{"Operator", feature.AllOperatorCount(), "+, =, AND, CASE-WHEN"},
		{"Aggregate", len(feature.Aggregates), "COUNT, SUM"},
		{"Data type", 3, "INTEGER, TEXT, BOOLEAN"},
	}
	t := &table{header: []string{"Feature type", "Number", "Examples"}}
	for _, r := range rows {
		t.add(r.FeatureType, itoa(r.Count), r.Examples)
	}
	return rows, t.render(
		"Table 6 — SQL features of the adaptive grammar\n" +
			"(paper: 6 statements, 10 clauses, 58 functions, 47 operators, 3 data types)")
}

// Table1Row is one tool of the qualitative comparison (paper Table 1).
type Table1Row struct {
	Tool        string
	CrashBugs   bool
	LogicBugs   bool
	NonCSystems bool
	Manual      string
}

// Table1 renders the qualitative tool comparison.
func Table1() ([]Table1Row, string) {
	rows := []Table1Row{
		{"AFL", true, false, false, "low"},
		{"Griffin", true, false, false, "low"},
		{"WingFuzz", true, false, false, "low"},
		{"SQLRight", true, true, false, "high"},
		{"SQLsmith", true, false, true, "high"},
		{"EET", true, true, true, "high"},
		{"SQLancer", true, true, true, "high"},
		{"SQLancer++ (this work)", true, true, true, "low"},
	}
	t := &table{header: []string{"Tool", "Crash", "Logic", "Non-C systems", "Manual effort"}}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		t.add(r.Tool, yn(r.CrashBugs), yn(r.LogicBugs), yn(r.NonCSystems), r.Manual)
	}
	return rows, t.render("Table 1 — DBMS testing approaches (qualitative; from the paper)")
}

// ExtraFunctionsSummary reports, per dialect, how many functions only the
// baseline generator knows (context for Figure 7 and Table 3).
func ExtraFunctionsSummary() string {
	t := &table{header: []string{"Dialect", "universal gap", "dialect-specific extras"}}
	for _, name := range dialect.Names() {
		d := dialect.MustGet(name)
		missing := 0
		for _, f := range feature.Functions {
			if !d.SupportsFunction(f) {
				missing++
			}
		}
		t.add(name, itoa(missing), itoa(len(baseline.ExtraFunctions(d))))
	}
	return t.render("Universal-grammar gaps and dialect-specific extras per dialect")
}
