// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) against the simulated DBMS substrate. Each experiment
// returns structured rows plus a rendered text table whose columns match
// the paper's, so paper-vs-measured comparisons are direct (they are
// recorded in EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"runtime"
	"strings"
)

// Scale controls experiment budgets. The paper uses wall-clock budgets
// (1 h, 24 h) on a 64-core server; statement counts are the comparable
// unit for an in-process engine.
type Scale struct {
	// Table2Cases is the per-DBMS oracle-check budget of the bug-finding
	// campaign.
	Table2Cases int
	// Table3Cases is the per-run budget of the coverage comparison.
	Table3Cases int
	// Table4Cases is the per-run budget of the validity comparison.
	Table4Cases int
	// Table5Cases and Table5Runs configure the prioritization study
	// (the paper: 1 h × 5 runs on CrateDB).
	Table5Cases int
	Table5Runs  int
	// Fig6Cases is the per-source-DBMS campaign budget used to collect
	// bug-inducing cases for the cross-DBMS validity matrix.
	Fig6Cases int
	// Fig6MaxCasesPerDBMS caps the cases re-executed per source system.
	Fig6MaxCasesPerDBMS int
	// AblationCases is the per-configuration budget of the ablations.
	AblationCases int
	// Workers bounds the pool the multi-campaign experiments (Table 2,
	// Table 5, Figure 6) fan their independent campaigns out over.
	// 0 picks min(GOMAXPROCS, 8); results are index-ordered, so the
	// output is identical for every worker count.
	Workers int
}

// workerCount resolves the Workers default.
func (s Scale) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DefaultScale keeps every experiment comfortably inside a test run.
func DefaultScale() Scale {
	return Scale{
		Table2Cases:         2500,
		Table3Cases:         2500,
		Table4Cases:         3000,
		Table5Cases:         4000,
		Table5Runs:          3,
		Fig6Cases:           1500,
		Fig6MaxCasesPerDBMS: 25,
		AblationCases:       2500,
	}
}

// FullScale is the cmd/experiments default: closer to the paper's
// budgets (minutes instead of milliseconds per cell).
func FullScale() Scale {
	return Scale{
		Table2Cases:         20000,
		Table3Cases:         12000,
		Table4Cases:         12000,
		Table5Cases:         30000,
		Table5Runs:          5,
		Fig6Cases:           6000,
		Fig6MaxCasesPerDBMS: 40,
		AblationCases:       10000,
	}
}

// table renders an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(title string) string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	return sb.String()
}

func pct(f float64) string  { return fmt.Sprintf("%.1f%%", 100*f) }
func f1(f float64) string   { return fmt.Sprintf("%.1f", f) }
func itoa(n int) string     { return fmt.Sprintf("%d", n) }
func itoa64(n int64) string { return fmt.Sprintf("%d", n) }
