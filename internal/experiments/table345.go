package experiments

import (
	"fmt"

	"sqlancerpp/internal/baseline"
	"sqlancerpp/internal/core/campaign"
	"sqlancerpp/internal/core/prioritize"
	"sqlancerpp/internal/coverage"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/par"
)

// coverageDBMSs are the systems of the paper's Tables 3 and 4.
var coverageDBMSs = []string{"sqlite", "postgresql", "duckdb"}

// modes are the three compared approaches.
var modes = []campaign.Mode{campaign.Adaptive, campaign.Rand, campaign.Baseline}

func configFor(mode campaign.Mode, d *dialect.Dialect, cases int, seed int64) campaign.Config {
	cfg := campaign.Config{
		Dialect:   d,
		Mode:      mode,
		TestCases: cases,
		Seed:      seed,
	}
	if mode == campaign.Baseline {
		cfg = baseline.Configure(cfg, d)
		cfg.TestCases = cases
		cfg.Seed = seed
	}
	return cfg
}

// Table3Cell is one approach × DBMS coverage measurement.
type Table3Cell struct {
	DBMS, Mode string
	LinePct    float64
	BranchPct  float64
}

// Table3Result is the coverage comparison (paper Table 3).
type Table3Result struct {
	Cells    []Table3Cell
	Rendered string
}

// Table3 measures engine coverage (instrumentation points as the gcov
// stand-in) for SQLancer++, SQLancer++ Rand, and the baseline on SQLite,
// PostgreSQL, and DuckDB. The paper's ordering — baseline > adaptive >
// random, with the smallest gap on DuckDB — should reproduce.
func Table3(scale Scale, seed int64) (*Table3Result, error) {
	res := &Table3Result{}
	for _, name := range coverageDBMSs {
		for _, mode := range modes {
			d := dialect.MustGet(name)
			rec := coverage.NewRecorder()
			cfg := configFor(mode, d, scale.Table3Cases, seed)
			cfg.Coverage = rec
			runner, err := campaign.New(cfg)
			if err != nil {
				return nil, err
			}
			if _, err := runner.Run(); err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Table3Cell{
				DBMS:      name,
				Mode:      mode.String(),
				LinePct:   rec.LinePercent(),
				BranchPct: rec.BranchPercent(),
			})
		}
	}
	t := &table{header: []string{"Approach", "SQLite line", "branch",
		"PostgreSQL line", "branch", "DuckDB line", "branch"}}
	for _, mode := range modes {
		row := []string{mode.String()}
		for _, name := range coverageDBMSs {
			for _, c := range res.Cells {
				if c.DBMS == name && c.Mode == mode.String() {
					row = append(row, fmt.Sprintf("%.1f%%", c.LinePct),
						fmt.Sprintf("%.1f%%", c.BranchPct))
				}
			}
		}
		t.add(row...)
	}
	res.Rendered = t.render(
		"Table 3 — engine coverage after a fixed budget\n" +
			"(paper, 24 h: SQLancer 46.6/32.3/33.4 line vs SQLancer++ 30.5/26.3/31.6; smallest gap on DuckDB)")
	return res, nil
}

// Table4Cell is one approach × DBMS validity measurement.
type Table4Cell struct {
	DBMS, Mode string
	Validity   float64
}

// Table4Result is the validity comparison (paper Table 4).
type Table4Result struct {
	Cells    []Table4Cell
	Rendered string
}

// Table4 measures the validity rate of oracle test cases for the three
// approaches (paper §5.4: feedback raises SQLite validity to 97.7% from
// 24.9%, PostgreSQL to 52.4% from 21.6%; the hand-written PostgreSQL
// baseline sits at 25.1% because of its complex dialect-specific
// features).
func Table4(scale Scale, seed int64) (*Table4Result, error) {
	res := &Table4Result{}
	for _, name := range coverageDBMSs {
		for _, mode := range modes {
			d := dialect.MustGet(name)
			runner, err := campaign.New(configFor(mode, d, scale.Table4Cases, seed))
			if err != nil {
				return nil, err
			}
			rep, err := runner.Run()
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Table4Cell{
				DBMS: name, Mode: mode.String(), Validity: rep.ValidityRate(),
			})
		}
	}
	t := &table{header: []string{"Approach", "SQLite", "PostgreSQL", "DuckDB"}}
	for _, mode := range modes {
		row := []string{mode.String()}
		for _, name := range coverageDBMSs {
			for _, c := range res.Cells {
				if c.DBMS == name && c.Mode == mode.String() {
					row = append(row, pct(c.Validity))
				}
			}
		}
		t.add(row...)
	}
	res.Rendered = t.render(
		"Table 4 — validity rate of generated test cases\n" +
			"(paper: 97.7/52.4/64.2 adaptive vs 24.9/21.6/24.6 random vs 98.0/25.1/35.5 baseline)")
	return res, nil
}

// Table5Row is one approach of the prioritization study.
type Table5Row struct {
	Mode        string
	Detected    float64
	Prioritized float64
	Unique      float64
}

// Table5Result is the prioritization study (paper Table 5).
type Table5Result struct {
	Rows     []Table5Row
	Rendered string
}

// Table5 runs the CrateDB prioritization study (paper §5.5): averages of
// detected bug-inducing cases, prioritized cases, and unique bugs over
// several runs, with and without feedback. The paper reports 67,878.2 →
// 35.8 → 11.4 with feedback and 55,412.2 → 28.4 → 9.8 without: the
// prioritizer removes >99% of duplicates, and feedback finds more.
func Table5(scale Scale, seed int64) (*Table5Result, error) {
	res := &Table5Result{}
	d := dialect.MustGet("cratedb")
	t5modes := []campaign.Mode{campaign.Adaptive, campaign.Rand}
	// Every mode × run cell is an independent campaign; fan the full
	// cross product out and fold the index-ordered results afterwards.
	type cell struct{ det, pri, uniq float64 }
	cells := make([]cell, len(t5modes)*scale.Table5Runs)
	err := par.ForEach(len(cells), scale.workerCount(), func(i int) error {
		mode := t5modes[i/scale.Table5Runs]
		run := i % scale.Table5Runs
		cfg := configFor(mode, d, scale.Table5Cases, seed+int64(run))
		cfg.KeepAllCases = true
		runner, err := campaign.New(cfg)
		if err != nil {
			return err
		}
		rep, err := runner.Run()
		if err != nil {
			return err
		}
		cells[i] = cell{
			det:  float64(rep.Detected),
			pri:  float64(rep.Prioritized),
			uniq: float64(rep.UniquePrioritized),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range t5modes {
		var det, pri, uniq float64
		for run := 0; run < scale.Table5Runs; run++ {
			c := cells[mi*scale.Table5Runs+run]
			det += c.det
			pri += c.pri
			uniq += c.uniq
		}
		n := float64(scale.Table5Runs)
		res.Rows = append(res.Rows, Table5Row{
			Mode:        mode.String(),
			Detected:    det / n,
			Prioritized: pri / n,
			Unique:      uniq / n,
		})
	}
	t := &table{header: []string{"Approach", "Detected", "Prioritized", "Unique"}}
	for _, r := range res.Rows {
		t.add(r.Mode, f1(r.Detected), f1(r.Prioritized), f1(r.Unique))
	}
	res.Rendered = t.render(fmt.Sprintf(
		"Table 5 — CrateDB bugs: average of %d runs × %d test cases\n"+
			"(paper, 1 h × 5 runs: 67878.2/35.8/11.4 with feedback, 55412.2/28.4/9.8 without)",
		scale.Table5Runs, scale.Table5Cases))
	return res, nil
}

// PrioritizerAblationRow compares dedup strategies on the same case set.
type PrioritizerAblationRow struct {
	Strategy   string
	Reported   int
	UniqueBugs int
	MissedBugs int
}

// AblationPrioritizer replays one CrateDB campaign's detected cases
// through three dedup strategies: the paper's subset rule, exact-set
// dedup, and no dedup (DESIGN.md §5 ablations).
func AblationPrioritizer(scale Scale, seed int64) ([]PrioritizerAblationRow, string, error) {
	d := dialect.MustGet("cratedb")
	cfg := configFor(campaign.Adaptive, d, scale.AblationCases, seed)
	cfg.KeepAllCases = true
	runner, err := campaign.New(cfg)
	if err != nil {
		return nil, "", err
	}
	rep, err := runner.Run()
	if err != nil {
		return nil, "", err
	}
	allFaults := map[string]bool{}
	for _, c := range rep.AllCases {
		for _, id := range c.Triggered {
			allFaults[id] = true
		}
	}
	evaluate := func(name string, report func(features []string) bool) PrioritizerAblationRow {
		found := map[string]bool{}
		reported := 0
		for _, c := range rep.AllCases {
			if report(c.Features) {
				reported++
				for _, id := range c.Triggered {
					found[id] = true
				}
			}
		}
		return PrioritizerAblationRow{
			Strategy:   name,
			Reported:   reported,
			UniqueBugs: len(found),
			MissedBugs: len(allFaults) - len(found),
		}
	}
	var rows []PrioritizerAblationRow
	p := prioritize.New()
	rows = append(rows, evaluate("subset rule (paper)", p.Report))
	exact := map[string]bool{}
	rows = append(rows, evaluate("exact-set dedup", func(fs []string) bool {
		key := fmt.Sprint(fs)
		if exact[key] {
			return false
		}
		exact[key] = true
		return true
	}))
	rows = append(rows, evaluate("no dedup", func([]string) bool { return true }))

	t := &table{header: []string{"Strategy", "Reported", "Unique bugs", "Missed bugs"}}
	for _, r := range rows {
		t.add(r.Strategy, itoa(r.Reported), itoa(r.UniqueBugs), itoa(r.MissedBugs))
	}
	return rows, t.render("Ablation — bug deduplication strategy (CrateDB)"), nil
}
