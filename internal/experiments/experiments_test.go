package experiments

import (
	"strings"
	"testing"

	"sqlancerpp/internal/dialect"
)

func dialectFor(t *testing.T) *dialect.Dialect {
	t.Helper()
	return dialect.MustGet("sqlite")
}

func tinyScale() Scale {
	return Scale{
		Table2Cases:         500,
		Table3Cases:         600,
		Table4Cases:         800,
		Table5Cases:         800,
		Table5Runs:          2,
		Fig6Cases:           400,
		Fig6MaxCasesPerDBMS: 10,
		AblationCases:       600,
	}
}

func TestTable1AndTable6AndFig7(t *testing.T) {
	rows, rendered := Table1()
	if len(rows) != 8 || !strings.Contains(rendered, "SQLancer++") {
		t.Fatal("Table 1 malformed")
	}
	t6, r6 := Table6()
	if len(t6) == 0 || !strings.Contains(r6, "58") {
		t.Fatalf("Table 6 malformed: %s", r6)
	}
	f7 := Fig7()
	// The adaptive grammar shares features with both baseline generators
	// (non-empty center) and each baseline has dialect-specific extras.
	if f7.FuncRegions["ABC"] == 0 {
		t.Error("Figure 7: empty center region")
	}
	if f7.FuncRegions["B"]+f7.FuncRegions["BC"] == 0 {
		t.Error("Figure 7: SQLite generator needs functions outside the grammar")
	}
	if f7.FuncRegions["C"]+f7.FuncRegions["BC"] == 0 {
		t.Error("Figure 7: PostgreSQL generator needs functions outside the grammar")
	}
}

func TestFig1MeasuresRepo(t *testing.T) {
	rows, rendered, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rendered, "3665") {
		t.Error("Figure 1 must quote the paper's SQLancer LOC")
	}
	adapter := rows[len(rows)-2].PerDBMSLOC
	generator := rows[len(rows)-1].PerDBMSLOC
	if adapter <= 0 || generator <= 0 {
		t.Fatalf("LOC measurements empty: adapter=%d generator=%d", adapter, generator)
	}
	// The paper's point: the adapter is orders of magnitude smaller.
	if adapter*10 > generator {
		t.Fatalf("adapter %d LOC vs generator %d LOC — the gap must be large",
			adapter, generator)
	}
}

func TestTable4Shape(t *testing.T) {
	res, err := Table4(tinyScale(), 21)
	if err != nil {
		t.Fatal(err)
	}
	get := func(dbms, mode string) float64 {
		for _, c := range res.Cells {
			if c.DBMS == dbms && c.Mode == mode {
				return c.Validity
			}
		}
		t.Fatalf("missing cell %s/%s", dbms, mode)
		return 0
	}
	for _, dbms := range []string{"sqlite", "postgresql", "duckdb"} {
		if get(dbms, "SQLancer++") <= get(dbms, "SQLancer++ Rand") {
			t.Errorf("%s: feedback must beat no-feedback", dbms)
		}
	}
	// Dynamic typing keeps SQLite validity above the static systems.
	if get("sqlite", "SQLancer++") <= get("postgresql", "SQLancer++") {
		t.Error("SQLite validity must exceed PostgreSQL (dynamic vs static)")
	}
}

func TestTable5Shape(t *testing.T) {
	res, err := Table5(tinyScale(), 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 approaches, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Detected < r.Prioritized || r.Prioritized < r.Unique {
			t.Errorf("%s: detected ≥ prioritized ≥ unique violated: %+v", r.Mode, r)
		}
		if r.Detected == 0 {
			t.Errorf("%s: no bugs detected on CrateDB", r.Mode)
		}
	}
}

func TestAblations(t *testing.T) {
	rows, rendered, err := AblationThreshold(tinyScale(), 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || !strings.Contains(rendered, "threshold") {
		t.Fatal("threshold ablation malformed")
	}
	rows2, _, err := AblationDepthSchedule(tinyScale(), 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 3 {
		t.Fatal("depth ablation malformed")
	}
	rows3, _, err := AblationPrioritizer(tinyScale(), 41)
	if err != nil {
		t.Fatal(err)
	}
	// The subset rule must report no more than exact dedup, which reports
	// no more than keeping everything; and it must not lose bugs.
	if rows3[0].Reported > rows3[1].Reported || rows3[1].Reported > rows3[2].Reported {
		t.Errorf("dedup strength ordering violated: %+v", rows3)
	}
	if rows3[2].MissedBugs != 0 {
		t.Errorf("no-dedup cannot miss bugs: %+v", rows3[2])
	}
}

func TestValiditySeriesImproves(t *testing.T) {
	series, rendered, err := ValiditySeries("postgresql", 4, 600, 51)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 || rendered == "" {
		t.Fatal("series malformed")
	}
	if series[len(series)-1] <= series[0] {
		t.Errorf("validity must improve across windows: %v", series)
	}
}

func TestConfigForModes(t *testing.T) {
	d := dialectFor(t)
	for _, m := range modes {
		cfg := configFor(m, d, 10, 1)
		if cfg.TestCases != 10 || cfg.Seed != 1 {
			t.Fatalf("%v: budget/seed not preserved", m)
		}
	}
}
