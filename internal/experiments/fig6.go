package experiments

import (
	"fmt"
	"strings"

	"sqlancerpp/internal/core/campaign"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/par"
)

// Fig6Result is the cross-DBMS validity matrix (paper Figure 6).
type Fig6Result struct {
	// Sources and Targets list the DBMS order of the matrix.
	Sources []string
	Targets []string
	// Validity[i][j] is the fraction of source i's bug-inducing cases
	// that execute without error on target j.
	Validity [][]float64
	// Overall is the mean off-diagonal validity (the paper reports 48%).
	Overall float64
	// RunsOnAll counts cases executable on every target (paper: none).
	RunsOnAll int
	// TotalCases is the number of bug-inducing cases collected.
	TotalCases int
	// BestTarget is the most permissive target (the paper: SQLite).
	BestTarget string
	Rendered   string
}

// Fig6 reproduces the SQL feature study (paper §5.2): bug-inducing test
// cases found on each source DBMS are re-executed on every target DBMS
// (fault-free instances); a case counts as valid on a target when every
// one of its statements executes without error.
func Fig6(scale Scale, seed int64) (*Fig6Result, error) {
	type caseStmts struct{ stmts []string }

	// Phase 1: one bug-collection campaign per source DBMS, fanned out
	// over the worker pool into dialect-order slots.
	collected := make([][]caseStmts, len(dialect.PaperDBMSs))
	err := par.ForEach(len(dialect.PaperDBMSs), scale.workerCount(), func(i int) error {
		name := dialect.PaperDBMSs[i]
		runner, err := campaign.New(campaign.Config{
			Dialect:   dialect.MustGet(name),
			Mode:      campaign.Adaptive,
			TestCases: scale.Fig6Cases,
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		rep, err := runner.Run()
		if err != nil {
			return err
		}
		for _, b := range rep.Bugs {
			if b.Class != campaign.ClassLogic {
				continue // the paper's study uses only logic bugs
			}
			stmts := append(append([]string{}, b.Setup...), b.Queries...)
			collected[i] = append(collected[i], caseStmts{stmts: stmts})
			if len(collected[i]) >= scale.Fig6MaxCasesPerDBMS {
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: the re-execution matrix. Each source row (its cases run
	// against all 18 targets on pristine instances) is independent; rows
	// fan out and fold in dialect order below.
	type srcRow struct {
		row       []float64
		runsOnAll int
	}
	matrix := make([]*srcRow, len(dialect.PaperDBMSs))
	err = par.ForEach(len(dialect.PaperDBMSs), scale.workerCount(), func(i int) error {
		cases := collected[i]
		if len(cases) == 0 {
			return nil
		}
		sr := &srcRow{}
		okOnAll := make([]bool, len(cases))
		for ci := range okOnAll {
			okOnAll[ci] = true
		}
		for _, tgt := range dialect.PaperDBMSs {
			td := dialect.MustGet(tgt)
			okCases := 0
			for ci, c := range cases {
				db := engine.Open(td, engine.WithoutFaults())
				allOK := true
				for _, stmt := range c.stmts {
					if err := db.Exec(stmt); err != nil {
						allOK = false
						break
					}
				}
				if allOK {
					okCases++
				} else {
					okOnAll[ci] = false
				}
			}
			sr.row = append(sr.row, float64(okCases)/float64(len(cases)))
		}
		for _, all := range okOnAll {
			if all {
				sr.runsOnAll++
			}
		}
		matrix[i] = sr
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig6Result{}
	var offDiagSum float64
	var offDiagN int
	targetValiditySum := map[string]float64{}
	for i, src := range dialect.PaperDBMSs {
		sr := matrix[i]
		if sr == nil {
			continue
		}
		res.Sources = append(res.Sources, src)
		res.TotalCases += len(collected[i])
		for j, tgt := range dialect.PaperDBMSs {
			v := sr.row[j]
			targetValiditySum[tgt] += v
			if tgt != src {
				offDiagSum += v
				offDiagN++
			}
		}
		res.RunsOnAll += sr.runsOnAll
		res.Validity = append(res.Validity, sr.row)
	}
	res.Targets = append([]string{}, dialect.PaperDBMSs...)
	if offDiagN > 0 {
		res.Overall = offDiagSum / float64(offDiagN)
	}
	// Iterate in dialect order so ties break deterministically.
	best, bestV := "", -1.0
	for _, tgt := range dialect.PaperDBMSs {
		if sum := targetValiditySum[tgt]; sum > bestV {
			best, bestV = tgt, sum
		}
	}
	res.BestTarget = best

	var sb strings.Builder
	sb.WriteString("Figure 6 — validity of bug-inducing cases across DBMSs (rows: source, cols: target)\n")
	sb.WriteString("(paper: overall off-diagonal validity 48%; no case runs on all 18; SQLite is the most permissive target)\n")
	sb.WriteString(fmt.Sprintf("%-12s", ""))
	for _, tgt := range res.Targets {
		sb.WriteString(fmt.Sprintf("%6s", tgt[:min(5, len(tgt))]))
	}
	sb.WriteByte('\n')
	for i, src := range res.Sources {
		sb.WriteString(fmt.Sprintf("%-12s", src))
		for _, v := range res.Validity[i] {
			sb.WriteString(fmt.Sprintf("%6.2f", v))
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(fmt.Sprintf(
		"overall off-diagonal validity: %.1f%%  cases executable on all targets: %d/%d  most permissive target: %s\n",
		100*res.Overall, res.RunsOnAll, res.TotalCases, res.BestTarget))
	res.Rendered = sb.String()
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
