package experiments

import (
	"sqlancerpp/internal/core/campaign"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/par"
)

// Table2Row is one DBMS of the bug-finding campaign (paper Table 2).
type Table2Row struct {
	DBMS    string
	Display string
	// Injected* describe the ground-truth fault catalogue (the stand-in
	// for the real bugs a months-long campaign can find).
	Injected      int
	InjectedLogic int
	// Detected counts bug-inducing test cases; Prioritized those the
	// prioritizer reported; Unique* the distinct ground-truth faults
	// found, by class (the paper's "unique bugs" via fix commits).
	Detected    int
	Prioritized int
	Unique      int
	UniqueLogic int
	UniqueOther int
	Validity    float64
	// FalsePositives must be zero; non-zero values indicate an engine
	// defect.
	FalsePositives int
}

// Table2Result aggregates the campaign.
type Table2Result struct {
	Rows     []Table2Row
	Rendered string
	// Totals.
	TotalInjected, TotalUnique, TotalLogic, TotalOther int
}

// Table2 runs the bug-finding campaign across the paper's 18 DBMSs
// (paper §5.1, Table 2). The per-DBMS fault catalogue follows the shape
// of the paper's per-DBMS bug counts at roughly half scale; "found"
// equals the number of distinct ground-truth faults the campaign
// triggers within the budget.
func Table2(scale Scale, seed int64) (*Table2Result, error) {
	res := &Table2Result{}
	classOf := func(dbms string) map[string]faults.Class {
		m := map[string]faults.Class{}
		for _, f := range faults.ForDialect(dbms) {
			m[f.ID] = f.Class
		}
		return m
	}
	// The 18 per-DBMS campaigns are independent; they fan out over a
	// bounded worker pool and land in dialect-order slots, so the table
	// is identical for every worker count.
	rows := make([]Table2Row, len(dialect.PaperDBMSs))
	err := par.ForEach(len(dialect.PaperDBMSs), scale.workerCount(), func(i int) error {
		name := dialect.PaperDBMSs[i]
		d := dialect.MustGet(name)
		injected := faults.ForDialect(name)
		nLogic := 0
		for _, f := range injected {
			if f.Class == faults.Logic {
				nLogic++
			}
		}
		runner, err := campaign.New(campaign.Config{
			Dialect:      d,
			Mode:         campaign.Adaptive,
			TestCases:    scale.Table2Cases,
			Seed:         seed,
			KeepAllCases: true,
		})
		if err != nil {
			return err
		}
		rep, err := runner.Run()
		if err != nil {
			return err
		}
		classes := classOf(name)
		uniq := map[string]bool{}
		for _, c := range rep.AllCases {
			for _, id := range c.Triggered {
				uniq[id] = true
			}
		}
		row := Table2Row{
			DBMS:           name,
			Display:        d.DisplayName,
			Injected:       len(injected),
			InjectedLogic:  nLogic,
			Detected:       rep.Detected,
			Prioritized:    rep.Prioritized,
			Unique:         len(uniq),
			Validity:       rep.ValidityRate(),
			FalsePositives: rep.FalsePositives,
		}
		for id := range uniq {
			if classes[id] == faults.Logic {
				row.UniqueLogic++
			} else {
				row.UniqueOther++
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		res.TotalInjected += row.Injected
		res.TotalUnique += row.Unique
		res.TotalLogic += row.UniqueLogic
		res.TotalOther += row.UniqueOther
	}

	t := &table{header: []string{"DBMS", "Injected", "Inj.Logic", "Detected",
		"Prioritized", "Unique", "Logic", "Other", "Validity", "FP"}}
	for _, r := range res.Rows {
		t.add(r.Display, itoa(r.Injected), itoa(r.InjectedLogic),
			itoa(r.Detected), itoa(r.Prioritized), itoa(r.Unique),
			itoa(r.UniqueLogic), itoa(r.UniqueOther), pct(r.Validity),
			itoa(r.FalsePositives))
	}
	t.add("Total", itoa(res.TotalInjected), "", "", "", itoa(res.TotalUnique),
		itoa(res.TotalLogic), itoa(res.TotalOther), "", "")
	res.Rendered = t.render(
		"Table 2 — bug-finding campaign across the 18 paper DBMSs\n" +
			"(paper: 196 reported bugs, 140 logic / 56 other; catalogue here is half-scale for the bug-heavy systems)")
	return res, nil
}
