package par

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		hit := make([]int32, 20)
		if err := ForEach(len(hit), workers, func(i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, n := range hit {
			if n != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachReturnsError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForEach(10, workers, func(i int) error {
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestForEachStopsEarly(t *testing.T) {
	var ran int32
	boom := errors.New("boom")
	err := ForEach(10000, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt32(&ran); n > 100 {
		t.Fatalf("%d items ran after the first failure; early stop is broken", n)
	}
}

func TestForEachRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(10, workers, func(i int) error {
			if i == 2 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic was not surfaced as an error", workers)
		}
		if !strings.Contains(err.Error(), "panic in item 2") ||
			!strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("workers=%d: err = %q, want item index and panic value", workers, err)
		}
		if !strings.Contains(err.Error(), "par.call") {
			t.Fatalf("workers=%d: err lacks a stack trace: %q", workers, err)
		}
	}
}

func TestForEachPanicLowestIndexWins(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(10, 4, func(i int) error {
		switch i {
		case 0:
			panic("first")
		case 9:
			return boom
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panic in item 0") {
		t.Fatalf("err = %v, want the item-0 panic under lowest-index semantics", err)
	}
}
