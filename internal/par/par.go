// Package par provides the bounded worker pool the campaign sharder and
// the experiment fan-outs share.
package par

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0), …, fn(n-1) over at most workers goroutines.
//
// Callers must write results into index-addressed slots inside fn, so the
// assembled output never depends on goroutine scheduling. After any fn
// fails, items that have not started yet are skipped; the lowest-index
// recorded error is returned. workers <= 1 runs everything inline, in
// order.
//
// A panic inside fn is contained: it is recovered (on worker goroutines
// too, where it would otherwise kill the whole process with no cleanup)
// and surfaces as that item's error, stack attached, under the same
// lowest-index-error semantics.
func ForEach(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := call(fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if failed.Load() {
					continue
				}
				if err := call(fn, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// call invokes fn(i), converting a panic into the item's error.
func call(fn func(i int) error, i int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("par: panic in item %d: %v\n%s", i, p, debug.Stack())
		}
	}()
	return fn(i)
}
