// Quickstart: point SQLancer++ at a DBMS and let it find logic bugs.
//
// This example tests the simulated CrateDB dialect — the paper's case
// study system — with both oracles, prints the campaign statistics, and
// shows the first reduced bug report.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"sqlancerpp"
)

func main() {
	report, err := sqlancerpp.Run(sqlancerpp.Options{
		DBMS:      "cratedb",
		TestCases: 8000,
		Seed:      42,
		Reduce:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tested %s with %d oracle checks (%.1f%% valid)\n",
		report.DBMS, report.TestCases, 100*report.ValidityRate)
	fmt.Printf("bug-inducing cases: %d, prioritized: %d, unique bugs: %d\n",
		report.Detected, report.Prioritized, report.UniqueBugs)
	fmt.Printf("features learned unsupported: %s\n\n",
		strings.Join(report.UnsupportedFeatures, ", "))

	for _, bug := range report.Bugs {
		if bug.Class != "logic" || len(bug.Reduced) == 0 {
			continue
		}
		fmt.Printf("reduced %s bug (oracle %s, ground truth %s):\n",
			bug.Class, bug.Oracle, strings.Join(bug.GroundTruthFaults, "+"))
		for _, stmt := range bug.Reduced {
			fmt.Printf("  %s;\n", stmt)
		}
		fmt.Printf("  -- %s\n", bug.Detail)
		break
	}
}
