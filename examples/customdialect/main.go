// Customdialect: the paper's core scenario — a DBMS team adopting the
// platform for their own system with a few lines of configuration
// instead of weeks of generator work (the Vitess story from the paper's
// introduction).
//
// We register "shardsql", a fictional MySQL-compatible distributed
// system that doesn't support subqueries, FULL JOIN, or XOR, and needs
// REFRESH TABLE before reads — then run a campaign against it. The
// adaptive generator learns the missing features on its own; the
// explicit registration only covers what no black box can reveal
// (the REFRESH handshake), mirroring the paper's ~16 LOC per DBMS.
//
// Run: go run ./examples/customdialect
package main

import (
	"fmt"
	"log"
	"strings"

	"sqlancerpp"
)

func main() {
	err := sqlancerpp.RegisterDialect(sqlancerpp.DialectSpec{
		Name:            "shardsql",
		Base:            "mysql",
		RemoveFeatures:  []string{"SUBQUERY", "FULL JOIN", "XOR", "INSTR", "HEX"},
		RequiresRefresh: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// First run: the generator starts with uniform probabilities.
	report, err := sqlancerpp.Run(sqlancerpp.Options{
		DBMS:      "shardsql",
		TestCases: 4000,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first run:  validity %.1f%%, learned unsupported: %s\n",
		100*report.ValidityRate, strings.Join(report.UnsupportedFeatures, ", "))

	// Second run: reuse the learned feature probabilities (the paper
	// persists them between executions, Figure 5 step 1).
	report2, err := sqlancerpp.Run(sqlancerpp.Options{
		DBMS:          "shardsql",
		TestCases:     4000,
		Seed:          2,
		FeedbackState: report.FeedbackState,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second run: validity %.1f%% (warm start)\n", 100*report2.ValidityRate)
	fmt.Printf("\nno bugs are injected into shardsql, so the campaign must be quiet:\n")
	fmt.Printf("bug reports: %d (false positives: %d)\n",
		report2.Detected, report2.FalsePositives)
}
