// Prioritization: a walk-through of the paper's Figure 4 on a live
// campaign. Every bug-inducing test case carries the set of SQL features
// that were enabled when it was generated; a case whose feature set is a
// superset of an already-reported case is a potential duplicate and is
// deprioritized.
//
// Run: go run ./examples/prioritization
package main

import (
	"fmt"
	"log"
	"strings"

	"sqlancerpp"
)

func main() {
	report, err := sqlancerpp.Run(sqlancerpp.Options{
		DBMS:      "umbra", // the buggiest system in the paper's Table 2
		TestCases: 6000,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("detected %d bug-inducing cases; the prioritizer reported %d\n",
		report.Detected, report.Prioritized)
	fmt.Printf("ground truth: %d distinct injected bugs were hit\n\n", report.UniqueBugs)

	fmt.Println("reported cases and their (deduplication) feature sets:")
	shown := 0
	for _, bug := range report.Bugs {
		if shown >= 8 {
			fmt.Printf("  ... and %d more\n", len(report.Bugs)-shown)
			break
		}
		core := coreFeatures(bug.Features)
		fmt.Printf("  #%-3d %-6s {%s}\n", bug.ID, bug.Class, strings.Join(core, ", "))
		shown++
	}

	fmt.Println("\nevery later case whose feature set contains one of these sets")
	fmt.Println("was marked a potential duplicate — the paper reduces >99% of")
	fmt.Println("the ~68K hourly CrateDB cases this way (Table 5).")
}

// coreFeatures trims a feature set to the short operator/function form
// the paper's Figure 4 uses.
func coreFeatures(features []string) []string {
	var out []string
	for _, f := range features {
		if strings.Contains(f, "#") || strings.Contains(f, " ") ||
			f == "CONSTANT" || f == "COLUMN" || f == "SELECT" || f == "WHERE" {
			continue
		}
		out = append(out, f)
		if len(out) >= 6 {
			out = append(out, "…")
			break
		}
	}
	return out
}
