// Crosscheck: the paper's §5.2 SQL feature study in miniature.
//
// A bug-inducing test case found on one DBMS rarely runs on the others —
// SQL dialects diverge even on "common" features. This example finds a
// logic bug on MonetDB, then replays the bug-inducing statements on all
// 18 paper DBMSs and reports where they execute.
//
// Run: go run ./examples/crosscheck
package main

import (
	"fmt"
	"log"

	"sqlancerpp"
)

func main() {
	report, err := sqlancerpp.Run(sqlancerpp.Options{
		DBMS:      "monetdb",
		TestCases: 6000,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	var stmts []string
	for _, bug := range report.Bugs {
		if bug.Class == "logic" {
			stmts = append(append(stmts, bug.Setup...), bug.Queries...)
			fmt.Printf("bug-inducing case from %s (%s, ground truth %v):\n",
				report.DBMS, bug.Oracle, bug.GroundTruthFaults)
			for _, s := range stmts {
				fmt.Printf("  %s;\n", s)
			}
			break
		}
	}
	if stmts == nil {
		log.Fatal("no logic bug found — increase TestCases")
	}

	fmt.Println("\nreplaying on every paper DBMS (pristine instances):")
	okCount := 0
	for _, target := range sqlancerpp.PaperDBMSs() {
		db, err := sqlancerpp.Open(target, true)
		if err != nil {
			log.Fatal(err)
		}
		var failed string
		for _, s := range stmts {
			if err := db.Exec(s); err != nil {
				failed = err.Error()
				break
			}
		}
		if failed == "" {
			okCount++
			fmt.Printf("  %-12s ok\n", target)
		} else {
			if len(failed) > 60 {
				failed = failed[:60]
			}
			fmt.Printf("  %-12s FAILS: %s\n", target, failed)
		}
	}
	fmt.Printf("\nexecutable on %d of %d systems — dialect divergence is why\n",
		okCount, len(sqlancerpp.PaperDBMSs()))
	fmt.Println("per-DBMS generators don't transfer (paper Figure 6).")
}
