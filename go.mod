module sqlancerpp

go 1.24
