package sqlancerpp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunCleanEngineIsQuiet(t *testing.T) {
	report, err := Run(Options{
		DBMS:        "sqlite",
		TestCases:   400,
		Seed:        1,
		CleanEngine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Detected != 0 || report.FalsePositives != 0 {
		t.Fatalf("clean engine produced bugs: %+v", report)
	}
	if report.TestCases != 400 {
		t.Fatalf("test cases = %d, want 400", report.TestCases)
	}
	if report.ValidityRate <= 0 {
		t.Fatal("validity rate must be positive")
	}
}

func TestRunFindsInjectedBugs(t *testing.T) {
	report, err := Run(Options{
		DBMS:      "cratedb",
		TestCases: 2500,
		Seed:      3,
		Reduce:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.UniqueBugs == 0 {
		t.Fatal("no unique bugs on the fault-injected CrateDB dialect")
	}
	if report.FalsePositives != 0 {
		t.Fatalf("%d false positives", report.FalsePositives)
	}
	foundReduced := false
	for _, b := range report.Bugs {
		if len(b.GroundTruthFaults) == 0 && b.Class == "logic" {
			t.Fatalf("logic bug without ground truth: %+v", b)
		}
		if len(b.Reduced) > 0 {
			foundReduced = true
			if len(b.Reduced) > len(b.Setup)+len(b.Queries) {
				t.Fatal("reduction must not grow the case")
			}
		}
	}
	if !foundReduced {
		t.Log("note: no case reproduced from pristine state for reduction")
	}
}

func TestRunOracleSelection(t *testing.T) {
	for _, oracle := range []string{"tlp", "norec", "both", ""} {
		if _, err := Run(Options{DBMS: "sqlite", TestCases: 50, Oracle: oracle, CleanEngine: true}); err != nil {
			t.Fatalf("oracle %q: %v", oracle, err)
		}
	}
	if _, err := Run(Options{DBMS: "sqlite", Oracle: "bogus"}); err == nil {
		t.Fatal("unknown oracle must be rejected")
	}
	if _, err := Run(Options{DBMS: "nope"}); err == nil {
		t.Fatal("unknown dialect must be rejected")
	}
}

func TestFeedbackStateReuse(t *testing.T) {
	first, err := Run(Options{DBMS: "postgresql", TestCases: 1500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.FeedbackState) == 0 {
		t.Fatal("no feedback state returned")
	}
	second, err := Run(Options{
		DBMS: "postgresql", TestCases: 1500, Seed: 10,
		FeedbackState: first.FeedbackState,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.ValidityRate < first.ValidityRate {
		t.Fatalf("warm start regressed validity: %.3f -> %.3f",
			first.ValidityRate, second.ValidityRate)
	}
}

func TestOpenAndQuery(t *testing.T) {
	db, err := Open("sqlite", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE TABLE t (a INTEGER, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("INSERT INTO t (a, b) VALUES (1, 'x')"); err != nil {
		t.Fatal(err)
	}
	cols, rows, err := db.Query("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(cols, ",") != "a,b" {
		t.Fatalf("columns = %v", cols)
	}
	if len(rows) != 1 || rows[0][0] != "1" || rows[0][1] != "'x'" {
		t.Fatalf("rows = %v", rows)
	}
	// Faulted instance exposes ground truth.
	db2, err := Open("sqlite", false)
	if err != nil {
		t.Fatal(err)
	}
	_ = db2.Exec("CREATE TABLE t (a TEXT, PRIMARY KEY (a))")
	_ = db2.Exec("INSERT INTO t (a) VALUES ('01')")
	_, _, _ = db2.Query("SELECT * FROM t WHERE t.a = REPLACE('1', ' ', '0')")
	if len(db2.TriggeredFaults()) == 0 {
		t.Fatal("REPLACE fault should have triggered on faulted sqlite")
	}
}

func TestRegisterDialect(t *testing.T) {
	err := RegisterDialect(DialectSpec{
		Name:            "unit-test-dbms",
		Base:            "mysql",
		RemoveFeatures:  []string{"XOR", "INSTR"},
		AddFeatures:     []string{"||", "GCD"},
		RequiresRefresh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range Dialects() {
		if d == "unit-test-dbms" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered dialect not listed")
	}
	db, err := Open("unit-test-dbms", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("SELECT 'a' || 'b'"); err != nil {
		t.Fatalf("added || must work: %v", err)
	}
	if err := db.Exec("SELECT GCD(4, 6)"); err != nil {
		t.Fatalf("added GCD must work: %v", err)
	}
	if err := db.Exec("SELECT TRUE XOR FALSE"); err == nil {
		t.Fatal("removed XOR must fail")
	}
	if err := db.Exec("SELECT INSTR('ab', 'b')"); err == nil {
		t.Fatal("removed INSTR must fail")
	}
	// Refresh semantics inherited from the spec.
	_ = db.Exec("CREATE TABLE t (a INTEGER)")
	_ = db.Exec("INSERT INTO t (a) VALUES (1)")
	_, rows, _ := db.Query("SELECT * FROM t")
	if len(rows) != 0 {
		t.Fatal("RequiresRefresh dialect must hide rows before REFRESH")
	}
	// Duplicate registration fails; unknown base fails.
	if err := RegisterDialect(DialectSpec{Name: "unit-test-dbms", Base: "mysql"}); err == nil {
		t.Fatal("duplicate dialect must be rejected")
	}
	if err := RegisterDialect(DialectSpec{Name: "x", Base: "nope"}); err == nil {
		t.Fatal("unknown base must be rejected")
	}
}

func TestPaperDBMSList(t *testing.T) {
	list := PaperDBMSs()
	if len(list) != 18 {
		t.Fatalf("paper DBMS count = %d", len(list))
	}
	list[0] = "mutated"
	if PaperDBMSs()[0] == "mutated" {
		t.Fatal("PaperDBMSs must return a copy")
	}
}

func TestBaselineMode(t *testing.T) {
	report, err := Run(Options{
		DBMS: "sqlite", TestCases: 400, Seed: 2, Baseline: true, CleanEngine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Mode != "SQLancer" {
		t.Fatalf("mode = %q, want SQLancer", report.Mode)
	}
	report2, err := Run(Options{
		DBMS: "sqlite", TestCases: 400, Seed: 2, NoFeedback: true, CleanEngine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report2.Mode != "SQLancer++ Rand" {
		t.Fatalf("mode = %q, want SQLancer++ Rand", report2.Mode)
	}
}

func TestRunWorkersDeterministic(t *testing.T) {
	opts := func(workers int) Options {
		return Options{DBMS: "sqlite", TestCases: 600, Seed: 11, Workers: workers}
	}
	serial, err := Run(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(opts(4))
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Workers=4 report differs from Workers=1")
	}
	if serial.Detected == 0 || serial.UniqueBugs == 0 {
		t.Fatalf("sharded campaign found nothing: %+v", serial)
	}
	if serial.FalsePositives != 0 {
		t.Fatalf("false positives: %d", serial.FalsePositives)
	}
}

func TestRunWorkersCleanEngineIsQuiet(t *testing.T) {
	rep, err := Run(Options{DBMS: "postgresql", TestCases: 400, Seed: 5,
		Workers: 3, CleanEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected != 0 {
		t.Fatalf("clean engine reported %d bug cases", rep.Detected)
	}
}
