// Command sqlint runs the project's invariant-enforcing static-analysis
// suite (internal/analysis): determinism of the report-producing
// packages, goroutine crash containment, sentinel-error discipline,
// checkpoint-fingerprint exhaustiveness, and fault-catalogue hygiene.
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation
// is
//
//	go build -o "$(go env GOPATH)/bin/sqlint" ./cmd/sqlint
//	go vet -vettool="$(go env GOPATH)/bin/sqlint" ./...
//
// Run directly with package patterns (`sqlint ./...`) it re-executes
// itself through go vet, so both forms analyze identical units with the
// build's exact type information. Suppress a finding by annotating the
// line (or the line above) with `//lint:allow <analyzer> <reason>`.
package main

import "sqlancerpp/internal/analysis"

func main() {
	analysis.Main(analysis.Suite())
}
