// Command sqlancerpp runs a SQLancer++ testing campaign against one of
// the simulated DBMS dialects and prints the prioritized bug reports.
//
// Usage:
//
//	sqlancerpp -dbms cratedb [-cases 20000] [-oracle all|tlp-family|<names>]
//	           [-seed 1] [-no-feedback] [-baseline] [-reduce] [-plans 6]
//	           [-state feedback.json] [-workers 8] [-budget 100000]
//	           [-checkpoint run.ckpt] [-resume] [-timeout 2s]
//	           [-shard-retries 2] [-chaos spec] [-list] [-list-oracles]
//
// With -checkpoint, SIGINT/SIGTERM stops the campaign at the next shard
// boundary after saving progress; re-running with -resume continues it
// and produces a final report byte-identical to an uninterrupted run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sqlancerpp"
)

func main() {
	dbms := flag.String("dbms", "", "dialect under test (see -list)")
	cases := flag.Int("cases", 10000, "number of oracle test cases")
	oracleName := flag.String("oracle", "all",
		"test oracles: all, tlp-family, or a comma-separated list of registered names (see -list-oracles)")
	seed := flag.Int64("seed", 1, "random seed")
	noFeedback := flag.Bool("no-feedback", false, "disable validity feedback (SQLancer++ Rand)")
	baselineMode := flag.Bool("baseline", false, "use the per-DBMS baseline generator (SQLancer)")
	reduceBugs := flag.Bool("reduce", true, "reduce prioritized logic bugs")
	maxPlans := flag.Int("plans", 0,
		"cap enumerated plans per PlanDiff query (0 = oracle default, negative = unlimited)")
	pairSched := flag.Bool("pairsched", true,
		"rank plan specs whose (query shape, plan) pair is not yet diffed ahead of the canonical order (false = truncate canonical order)")
	statePath := flag.String("state", "", "load/persist learned feature probabilities (JSON)")
	workers := flag.Int("workers", 0, "run the campaign as deterministic parallel shards over N workers (0 = serial)")
	batch := flag.Int("batch", 0,
		"columnar batch width for the engine's scan filter (0 = engine default, negative = row-at-a-time)")
	budget := flag.Int64("budget", 0,
		"deterministic per-statement rows-touched budget (0 = unlimited); exceeded statements are skipped, counted, never reported as bugs")
	checkpoint := flag.String("checkpoint", "",
		"persist campaign progress to this file after every completed shard (SIGINT/SIGTERM saves and exits cleanly)")
	resume := flag.Bool("resume", false, "continue an interrupted campaign from -checkpoint")
	caseTimeout := flag.Duration("timeout", 0,
		"per-case wall-clock watchdog; cases exceeding it are canceled and reported as hangs with their seed (0 = disabled)")
	shardRetries := flag.Int("shard-retries", 0,
		"retries before a failing shard is quarantined and the campaign completes degraded (0 = default 2, negative = no retries)")
	chaosSpec := flag.String("chaos", "",
		"inject deterministic harness faults, e.g. 'ckpt-write=~8;shard-error=1x2' (testing the harness itself; see internal/chaos)")
	list := flag.Bool("list", false, "list registered dialects and exit")
	listOracles := flag.Bool("list-oracles", false, "list registered oracles and exit")
	maxPrint := flag.Int("max-print", 5, "bug reports to print in full")
	flag.Parse()

	if *list {
		for _, d := range sqlancerpp.Dialects() {
			fmt.Println(d)
		}
		return
	}
	if *listOracles {
		for _, o := range sqlancerpp.Oracles() {
			fmt.Println(o)
		}
		return
	}
	if *dbms == "" {
		fmt.Fprintln(os.Stderr, "sqlancerpp: -dbms is required (use -list to see options)")
		os.Exit(2)
	}

	opts := sqlancerpp.Options{
		DBMS:            *dbms,
		Oracle:          *oracleName,
		TestCases:       *cases,
		Seed:            *seed,
		NoFeedback:      *noFeedback,
		Baseline:        *baselineMode,
		Reduce:          *reduceBugs,
		MaxPlans:        *maxPlans,
		NoPlanPairSched: !*pairSched,
		Workers:         *workers,
		RowBudget:       *budget,
		BatchSize:       *batch,
		Checkpoint:      *checkpoint,
		Resume:          *resume,
		CaseTimeout:     *caseTimeout,
		ShardRetries:    *shardRetries,
		Chaos:           *chaosSpec,
	}
	if *statePath != "" {
		if data, err := os.ReadFile(*statePath); err == nil {
			opts.FeedbackState = data
		}
	}
	if *checkpoint != "" {
		// SIGINT/SIGTERM closes the interrupt channel; the campaign stops
		// at the next shard boundary with every completed shard already
		// checkpointed, and the process exits cleanly.
		interrupt := make(chan struct{})
		opts.Interrupt = interrupt
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		//lint:allow containment body is a blocking receive plus close and cannot panic; a recover boundary could swallow the close and hang shutdown
		go func() {
			<-sigs
			signal.Stop(sigs)
			close(interrupt)
		}()
	}

	report, err := sqlancerpp.Run(opts)
	if errors.Is(err, sqlancerpp.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "sqlancerpp: interrupted; progress saved to %s (continue with -resume)\n", *checkpoint)
		return
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sqlancerpp: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("== %s (%s) ==\n", report.DBMS, report.Mode)
	fmt.Printf("test cases: %d  valid: %d (%.1f%%)\n",
		report.TestCases, report.ValidCases, 100*report.ValidityRate)
	fmt.Printf("bug-inducing cases: %d  prioritized: %d  unique bugs (ground truth): %d\n",
		report.Detected, report.Prioritized, report.UniqueBugs)
	if report.FalsePositives > 0 {
		fmt.Printf("WARNING: %d false positives — engine defect!\n", report.FalsePositives)
	}
	if report.HarnessCrashes > 0 {
		fmt.Printf("harness crashes contained: %d (panics recovered, engine restarted)\n",
			report.HarnessCrashes)
	}
	if report.BudgetExceeded > 0 {
		fmt.Printf("statements over the -budget row limit: %d (skipped deterministically)\n",
			report.BudgetExceeded)
	}
	if report.Hangs > 0 {
		fmt.Printf("hangs: %d cases exceeded the -timeout watchdog (reported as hang-class bugs)\n",
			report.Hangs)
	}
	if report.ShardRetries > 0 {
		fmt.Printf("shard attempts retried: %d\n", report.ShardRetries)
	}
	if report.ShardsQuarantined > 0 {
		fmt.Printf("WARNING: %d shards quarantined; results are degraded\n", report.ShardsQuarantined)
		for _, q := range report.QuarantinedShards {
			fmt.Printf("   shard %d (seed %d, %d cases): %s\n", q.Shard, q.Seed, q.TestCases, q.Err)
		}
	}
	if report.CheckpointWriteFailures > 0 {
		fmt.Printf("WARNING: %d checkpoint writes failed (campaign continued; -resume may lose progress)\n",
			report.CheckpointWriteFailures)
	}
	if report.PlanPairsNovel+report.PlanPairsRepeated > 0 {
		fmt.Printf("plan pairs diffed: %d novel, %d repeated\n",
			report.PlanPairsNovel, report.PlanPairsRepeated)
	}
	if len(report.UnsupportedFeatures) > 0 {
		fmt.Printf("learned unsupported features: %s\n",
			strings.Join(report.UnsupportedFeatures, ", "))
	}
	for i, b := range report.Bugs {
		if i >= *maxPrint {
			fmt.Printf("... and %d more prioritized reports\n", len(report.Bugs)-i)
			break
		}
		fmt.Printf("\n-- bug #%d [%s/%s] %s\n", b.ID, b.Class, b.Oracle, b.Detail)
		if b.PlanSpec != "" {
			fmt.Printf("   losing plan: %s\n", b.PlanSpec)
		}
		fmt.Printf("   ground truth: %s\n", strings.Join(b.GroundTruthFaults, ", "))
		stmts := b.Reduced
		if len(stmts) == 0 {
			stmts = append(append([]string{}, b.Setup...), b.Queries...)
		}
		for _, s := range stmts {
			fmt.Printf("   %s;\n", s)
		}
	}

	if *statePath != "" && report.FeedbackState != nil {
		if err := os.WriteFile(*statePath, report.FeedbackState, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sqlancerpp: persisting state: %v\n", err)
		}
	}
}
