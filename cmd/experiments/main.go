// Command experiments regenerates the paper's evaluation tables and
// figures (Tables 1–6, Figures 1, 6, 7) plus the design-choice
// ablations, printing each as a text table with the paper's reported
// values quoted for comparison.
//
// Usage:
//
//	experiments [-exp all|table1|table2|table3|table4|table5|table6|fig1|fig6|fig7|ablations|series]
//	            [-scale default|full] [-seed N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"sqlancerpp/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	scaleName := flag.String("scale", "default", "budget scale: default or full")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "campaign worker pool for the multi-campaign experiments (0 = min(GOMAXPROCS, 8))")
	flag.Parse()

	scale := experiments.DefaultScale()
	if *scaleName == "full" {
		scale = experiments.FullScale()
	}
	scale.Workers = *workers

	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("table1", func() (string, error) {
		_, s := experiments.Table1()
		return s, nil
	})
	run("fig1", func() (string, error) {
		_, s, err := experiments.Fig1()
		return s, err
	})
	run("table6", func() (string, error) {
		_, s := experiments.Table6()
		return s, nil
	})
	run("fig7", func() (string, error) {
		return experiments.Fig7().Rendered, nil
	})
	run("table2", func() (string, error) {
		res, err := experiments.Table2(scale, *seed)
		if err != nil {
			return "", err
		}
		return res.Rendered, nil
	})
	run("fig6", func() (string, error) {
		res, err := experiments.Fig6(scale, *seed)
		if err != nil {
			return "", err
		}
		return res.Rendered, nil
	})
	run("table3", func() (string, error) {
		res, err := experiments.Table3(scale, *seed)
		if err != nil {
			return "", err
		}
		return res.Rendered, nil
	})
	run("table4", func() (string, error) {
		res, err := experiments.Table4(scale, *seed)
		if err != nil {
			return "", err
		}
		return res.Rendered, nil
	})
	run("series", func() (string, error) {
		_, s, err := experiments.ValiditySeries("postgresql", 6, 800, *seed)
		if err != nil {
			return "", err
		}
		_, s2, err := experiments.ValiditySeries("sqlite", 6, 800, *seed)
		return s + s2, err
	})
	run("table5", func() (string, error) {
		res, err := experiments.Table5(scale, *seed)
		if err != nil {
			return "", err
		}
		return res.Rendered, nil
	})
	run("ablations", func() (string, error) {
		_, s1, err := experiments.AblationThreshold(scale, *seed)
		if err != nil {
			return "", err
		}
		_, s2, err := experiments.AblationDepthSchedule(scale, *seed)
		if err != nil {
			return "", err
		}
		_, s3, err := experiments.AblationUpdateInterval(scale, *seed)
		if err != nil {
			return "", err
		}
		_, s4, err := experiments.AblationPrioritizer(scale, *seed)
		if err != nil {
			return "", err
		}
		return s1 + "\n" + s2 + "\n" + s3 + "\n" + s4, nil
	})
}
