package sqlancerpp

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// bench regenerates its table/figure at a reduced budget and reports
// throughput metrics; run cmd/experiments for full-scale output.

import (
	"fmt"
	"testing"
	"time"

	"sqlancerpp/internal/core/campaign"
	"sqlancerpp/internal/core/feedback"
	"sqlancerpp/internal/core/oracle"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/experiments"
	"sqlancerpp/internal/sqlast"
	"sqlancerpp/internal/sqlparse"
)

func benchScale() experiments.Scale {
	s := experiments.DefaultScale()
	s.Table2Cases = 800
	s.Table3Cases = 800
	s.Table4Cases = 1000
	s.Table5Cases = 1200
	s.Table5Runs = 2
	s.Fig6Cases = 600
	s.AblationCases = 800
	return s
}

// BenchmarkFigure1DialectLOC regenerates the per-DBMS LOC comparison
// (paper Figure 1).
func BenchmarkFigure1DialectLOC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[len(rows)-2].PerDBMSLOC), "adapter-loc/dbms")
	}
}

// BenchmarkTable1ToolComparison regenerates the qualitative comparison
// (paper Table 1).
func BenchmarkTable1ToolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table1()
		if len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2BugCampaign regenerates the 18-DBMS bug-finding
// campaign (paper Table 2).
func BenchmarkTable2BugCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchScale(), int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalUnique), "unique-bugs")
		b.ReportMetric(float64(res.TotalLogic), "logic-bugs")
	}
}

// BenchmarkTable3Coverage regenerates the coverage comparison (paper
// Table 3).
func BenchmarkTable3Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchScale(), int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Cells[0].LinePct, "adaptive-sqlite-line%")
	}
}

// BenchmarkTable4Validity regenerates the validity comparison (paper
// Table 4).
func BenchmarkTable4Validity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchScale(), int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Cells[0].Validity, "adaptive-sqlite-validity%")
	}
}

// BenchmarkTable5Prioritization regenerates the CrateDB prioritization
// study (paper Table 5).
func BenchmarkTable5Prioritization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(benchScale(), int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Detected, "detected")
		b.ReportMetric(res.Rows[0].Prioritized, "prioritized")
		b.ReportMetric(res.Rows[0].Unique, "unique")
	}
}

// BenchmarkFigure6CrossDBMSValidity regenerates the SQL feature study
// (paper Figure 6).
func BenchmarkFigure6CrossDBMSValidity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchScale(), int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Overall, "cross-validity%")
	}
}

// BenchmarkFigure7FeatureVenn regenerates the feature-overlap study
// (paper Figure 7) and Table 6's feature counts.
func BenchmarkFigure7FeatureVenn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7()
		rows, _ := experiments.Table6()
		b.ReportMetric(float64(res.FuncRegions["A"]), "adaptive-only-funcs")
		b.ReportMetric(float64(rows[3].Count), "grammar-functions")
	}
}

// BenchmarkAblationThreshold sweeps the Bayesian threshold p.
func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationThreshold(benchScale(), int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDepthSchedule compares depth schedules.
func BenchmarkAblationDepthSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationDepthSchedule(benchScale(), int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUpdateInterval sweeps the feedback update interval.
func BenchmarkAblationUpdateInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationUpdateInterval(benchScale(), int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPrioritizer compares dedup strategies.
func BenchmarkAblationPrioritizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationPrioritizer(benchScale(), int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignThroughput measures raw oracle checks per second on
// SQLite (context for the statement-budget ↔ wall-clock substitution).
// Cases/second is the product metric of the whole platform, and allocs/op
// is the hot-path signal the engine optimizations are judged against.
func BenchmarkCampaignThroughput(b *testing.B) {
	d := dialect.MustGet("sqlite")
	b.ReportAllocs()
	b.ResetTimer()
	runner, err := campaign.New(campaign.Config{
		Dialect: d, Mode: campaign.Adaptive, TestCases: b.N + 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := runner.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cases/sec")
}

// BenchmarkBudgetedCampaign is BenchmarkCampaignThroughput with the
// deterministic rows-touched budget armed at a ceiling no generated
// statement reaches: it measures the pure overhead of the per-row budget
// check on the exec hot paths. The acceptance bar is throughput within
// 1% of the unbudgeted campaign.
func BenchmarkBudgetedCampaign(b *testing.B) {
	d := dialect.MustGet("sqlite")
	b.ReportAllocs()
	b.ResetTimer()
	runner, err := campaign.New(campaign.Config{
		Dialect: d, Mode: campaign.Adaptive, TestCases: b.N + 1, Seed: 1,
		RowBudget: 1 << 40,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := runner.Run()
	if err != nil {
		b.Fatal(err)
	}
	if rep.BudgetExceeded != 0 {
		b.Fatalf("budget ceiling reached %d times; the overhead measurement is polluted", rep.BudgetExceeded)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cases/sec")
}

// BenchmarkSupervisedCampaign is the sharded campaign with the full
// robustness harness armed — supervisor (default retries), per-case
// watchdog at a ceiling no case reaches, and a checkpoint written after
// every shard — against the fault-free engine. It measures the overhead
// of supervised execution itself: no retries fire, no hangs trip, and
// the acceptance bar is throughput comparable to the unsupervised
// sharded run.
func BenchmarkSupervisedCampaign(b *testing.B) {
	d := dialect.MustGet("sqlite")
	ckpt := b.TempDir() + "/bench.ckpt"
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := campaign.RunShardedOpts(campaign.Config{
		Dialect: d, Mode: campaign.Adaptive, TestCases: b.N + 1, Seed: 1,
		CaseTimeout: time.Hour,
	}, campaign.ShardedOptions{Workers: 2, CheckpointPath: ckpt})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Hangs != 0 || rep.ShardRetries != 0 || rep.ShardsQuarantined != 0 {
		b.Fatalf("supervision fired on a fault-free run: hangs=%d retries=%d quarantined=%d",
			rep.Hangs, rep.ShardRetries, rep.ShardsQuarantined)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cases/sec")
}

// BenchmarkExecSelect measures the engine's SELECT hot path in isolation:
// a two-table join with WHERE, ORDER BY, and an aggregate-free projection
// over a populated database, executed from SQL text exactly as the
// campaign does.
func BenchmarkExecSelect(b *testing.B) {
	db := engine.Open(dialect.MustGet("sqlite"), engine.WithoutFaults())
	setup := []string{
		"CREATE TABLE t0 (c0 INTEGER, c1 TEXT, c2 INTEGER)",
		"CREATE TABLE t1 (c0 INTEGER, c1 TEXT)",
	}
	for _, s := range setup {
		if err := db.Exec(s); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		if err := db.Exec(fmt.Sprintf(
			"INSERT INTO t0 VALUES (%d, 'r%d', %d)", i%13, i, i)); err != nil {
			b.Fatal(err)
		}
		if err := db.Exec(fmt.Sprintf(
			"INSERT INTO t1 VALUES (%d, 'x%d')", i%7, i)); err != nil {
			b.Fatal(err)
		}
	}
	const q = "SELECT t0.c1, t0.c2 + t1.c0 FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 " +
		"WHERE t0.c2 > 10 AND t0.c0 <= 11 ORDER BY t0.c2 DESC LIMIT 20"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkIndexedSelect measures the access-path planner's win on a
// selective equality predicate: 4096 rows, 512 distinct keys (8 rows per
// key). The "indexed" sub-benchmark probes the ordered index store; the
// "fullscan" one runs the identical state with the planner disabled. The
// rows-touched/op metric is the engine's LastCost — the index path must
// charge only the rows it actually touches.
func BenchmarkIndexedSelect(b *testing.B) {
	setup := func(opts ...engine.Option) *engine.DB {
		db := engine.Open(dialect.MustGet("sqlite"), append([]engine.Option{engine.WithoutFaults()}, opts...)...)
		if err := db.Exec("CREATE TABLE t (c0 INTEGER, c1 TEXT)"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 4096; i += 16 {
			sql := "INSERT INTO t VALUES "
			for j := i; j < i+16; j++ {
				if j > i {
					sql += ", "
				}
				sql += fmt.Sprintf("(%d, 'r%d')", j%512, j)
			}
			if err := db.Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Exec("CREATE INDEX i0 ON t (c0)"); err != nil {
			b.Fatal(err)
		}
		return db
	}
	const q = "SELECT * FROM t WHERE c0 = 137"
	run := func(b *testing.B, db *engine.DB) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 8 {
				b.Fatalf("got %d rows, want 8", len(res.Rows))
			}
		}
		b.ReportMetric(float64(db.LastCost()), "rows-touched/op")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	}
	b.Run("indexed", func(b *testing.B) { run(b, setup()) })
	b.Run("fullscan", func(b *testing.B) { run(b, setup(engine.WithPlanSpec(engine.PlanSpec{DisableIndexPaths: true}))) })
}

// BenchmarkIndexJoin measures the index-nested-loop join against the
// quadratic candidate loop on a selective equality ON: 48 left rows
// joining 4096 right rows over 512 distinct keys (8 rows per key). The
// "probe" sub-benchmark binary-searches the right table's ordered store
// per left row; "quadratic" runs the identical state with the planner
// suppressed. rows-touched/op is the engine's LastCost — the acceptance
// bar is the probe path touching at most a tenth of the quadratic rows.
func BenchmarkIndexJoin(b *testing.B) {
	setup := func(opts ...engine.Option) *engine.DB {
		db := engine.Open(dialect.MustGet("sqlite"), append([]engine.Option{engine.WithoutFaults()}, opts...)...)
		if err := db.Exec("CREATE TABLE l (c0 INTEGER, c1 TEXT)"); err != nil {
			b.Fatal(err)
		}
		if err := db.Exec("CREATE TABLE r (k0 INTEGER, k1 TEXT)"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 48; i++ {
			if err := db.Exec(fmt.Sprintf("INSERT INTO l VALUES (%d, 'l%d')", i%512, i)); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 4096; i += 16 {
			sql := "INSERT INTO r VALUES "
			for j := i; j < i+16; j++ {
				if j > i {
					sql += ", "
				}
				sql += fmt.Sprintf("(%d, 'r%d')", j%512, j)
			}
			if err := db.Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Exec("CREATE INDEX ik ON r (k0)"); err != nil {
			b.Fatal(err)
		}
		return db
	}
	const q = "SELECT l.c1, r.k1 FROM l INNER JOIN r ON l.c0 = r.k0"
	run := func(b *testing.B, db *engine.DB) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 48*8 {
				b.Fatalf("got %d rows, want %d", len(res.Rows), 48*8)
			}
		}
		b.ReportMetric(float64(db.LastCost()), "rows-touched/op")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	}
	b.Run("probe", func(b *testing.B) { run(b, setup()) })
	b.Run("quadratic", func(b *testing.B) { run(b, setup(engine.WithPlanSpec(engine.PlanSpec{DisableIndexPaths: true}))) })
}

// BenchmarkIndexedDML measures index-assisted UPDATE and DELETE against
// the full-scan arms on identical state: 16384 rows over 512 keys (32
// rows per key). The UPDATE keeps its probe key stable and the DELETE's
// trailing conjunct matches nothing, so every iteration sees the same
// table. rows-touched/op is the engine's LastCost — the acceptance bar
// is the indexed arm charging at most a tenth of the full scan.
func BenchmarkIndexedDML(b *testing.B) {
	setup := func(opts ...engine.Option) *engine.DB {
		db := engine.Open(dialect.MustGet("sqlite"), append([]engine.Option{engine.WithoutFaults()}, opts...)...)
		if err := db.Exec("CREATE TABLE t (c0 INTEGER, c1 INTEGER)"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 16384; i += 16 {
			sql := "INSERT INTO t VALUES "
			for j := i; j < i+16; j++ {
				if j > i {
					sql += ", "
				}
				sql += fmt.Sprintf("(%d, %d)", j%512, j)
			}
			if err := db.Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Exec("CREATE INDEX i0 ON t (c0)"); err != nil {
			b.Fatal(err)
		}
		return db
	}
	run := func(b *testing.B, db *engine.DB, stmt string) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Exec(stmt); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(db.LastCost()), "rows-touched/op")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "stmts/sec")
	}
	const update = "UPDATE t SET c1 = c1 + 1 WHERE c0 = 137"
	const del = "DELETE FROM t WHERE c0 = 137 AND c1 < 0"
	b.Run("update-indexed", func(b *testing.B) { run(b, setup(), update) })
	b.Run("update-fullscan", func(b *testing.B) {
		run(b, setup(engine.WithPlanSpec(engine.PlanSpec{DisableIndexPaths: true})), update)
	})
	b.Run("delete-indexed", func(b *testing.B) { run(b, setup(), del) })
	b.Run("delete-fullscan", func(b *testing.B) { run(b, setup(engine.WithPlanSpec(engine.PlanSpec{DisableIndexPaths: true})), del) })
}

// BenchmarkPlanDiffEnumeration measures the PlanDiff oracle's enumerated
// plan space on a composite-indexed joined state: specs/query is the
// size of the equivalent-plan set the enumerator yields, and
// rows-touched/extra-plan is the mean executor cost each additional plan
// pair adds on top of the baseline execution — the per-plan price the
// -plans cap trades against plan-space coverage.
func BenchmarkPlanDiffEnumeration(b *testing.B) {
	db := engine.Open(dialect.MustGet("sqlite"), engine.WithoutFaults())
	mustSetup := func(sql string) {
		if err := db.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
	mustSetup("CREATE TABLE t (a INTEGER, b INTEGER, c TEXT)")
	mustSetup("CREATE TABLE r (y INTEGER, ry TEXT)")
	for i := 0; i < 1024; i += 16 {
		sql := "INSERT INTO t VALUES "
		for j := i; j < i+16; j++ {
			if j > i {
				sql += ", "
			}
			sql += fmt.Sprintf("(%d, %d, 'r%d')", j%16, (j/16)%16, j)
		}
		mustSetup(sql)
	}
	for i := 0; i < 128; i++ {
		mustSetup(fmt.Sprintf("INSERT INTO r VALUES (%d, 'x%d')", i%16, i))
	}
	mustSetup("CREATE INDEX ia ON t (a)")
	mustSetup("CREATE INDEX iab ON t (a, b)")
	mustSetup("CREATE INDEX iy ON r (y)")

	const q = "SELECT t.c, r.ry FROM t INNER JOIN r ON t.a = r.y WHERE t.a = 7 AND t.b = 3"
	stmt, err := sqlparse.Shared().Parse(q)
	if err != nil {
		b.Fatal(err)
	}
	sel := stmt.(*sqlast.Select)

	var nSpecs int
	var extraRows int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.SetPlanSpec(engine.PlanSpec{})
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
		specs := engine.EnumeratePlans(db, sel)
		nSpecs = len(specs)
		extraRows = 0
		for _, spec := range specs {
			db.SetPlanSpec(spec)
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
			extraRows += db.LastCost()
		}
		db.SetPlanSpec(engine.PlanSpec{})
	}
	b.ReportMetric(float64(nSpecs), "specs/query")
	b.ReportMetric(float64(extraRows)/float64(nSpecs), "rows-touched/extra-plan")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cases/sec")
}

// BenchmarkPlanPairNovelty measures what the plan-pair novelty scheduler
// buys at the unchanged -plans cap: a workload of recurring query shapes
// (the same skeleton regenerated with fresh literals, which is exactly
// what the generator produces) runs through the PlanDiff oracle under
// the "scheduled" arm (unseen (shape, spec) pairs rank first) and the
// "canonical" ablation arm (same tracker bookkeeping, canonical
// truncation — the pre-scheduler behavior). Both arms execute the same
// number of plans per case; the scheduler redirects that identical row
// budget toward pairs not yet diffed. The headline metric is
// novel-pairs/krows — novel plan pairs diffed per thousand executor rows
// touched — and the acceptance bar is the scheduled arm scoring at
// least 3x the canonical arm.
func BenchmarkPlanPairNovelty(b *testing.B) {
	build := func() *engine.DB {
		db := engine.Open(dialect.MustGet("sqlite"), engine.WithoutFaults())
		mustSetup := func(sql string) {
			if err := db.Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
		mustSetup("CREATE TABLE p0 (a0 INTEGER, x0 TEXT)")
		mustSetup("CREATE TABLE p1 (a1 INTEGER, b1 INTEGER)")
		mustSetup("CREATE TABLE p2 (b2 INTEGER, c2 INTEGER)")
		mustSetup("CREATE TABLE p3 (c3 INTEGER, x3 TEXT)")
		for i := 0; i < 24; i++ {
			mustSetup(fmt.Sprintf("INSERT INTO p0 VALUES (%d, 'p0r%d')", i%6, i))
			mustSetup(fmt.Sprintf("INSERT INTO p1 VALUES (%d, %d)", i%6, i%8))
			mustSetup(fmt.Sprintf("INSERT INTO p2 VALUES (%d, %d)", i%8, i%5))
			mustSetup(fmt.Sprintf("INSERT INTO p3 VALUES (%d, 'p3r%d')", i%5, i))
		}
		mustSetup("CREATE INDEX ip1 ON p1 (a1)")
		mustSetup("CREATE INDEX ip2 ON p2 (b2)")
		mustSetup("CREATE INDEX ip3 ON p3 (c3)")
		return db
	}

	// Three 4-relation chain shapes, each recurring four times with fresh
	// literals — same fingerprint, different Case. A 4-chain enumerates
	// well past the cap (the join-order axis alone yields 23 permutation
	// specs), so the canonical arm re-diffs the same capped prefix on
	// every recurrence while the scheduled arm walks the rest of the
	// shape's enumeration.
	const recurrences = 6
	const chain = " FROM p0 INNER JOIN p1 ON p0.a0 = p1.a1 " +
		"INNER JOIN p2 ON p1.b1 = p2.b2 INNER JOIN p3 ON p2.c2 = p3.c3 "
	shapes := []func(lit int) string{
		func(l int) string {
			return fmt.Sprintf("SELECT p0.x0, p3.x3"+chain+"WHERE p0.a0 = %d", l%6)
		},
		func(l int) string {
			return fmt.Sprintf("SELECT p1.b1, p2.c2"+chain+"WHERE p0.a0 > %d AND p3.c3 = %d",
				l%4, l%5)
		},
		func(l int) string {
			return fmt.Sprintf("SELECT p0.x0, p1.a1, p2.b2"+chain+"WHERE p2.c2 < %d", 2+l%3)
		},
	}
	type preparedCase struct {
		base *sqlast.Select
		pred sqlast.Expr
	}
	var cases []preparedCase
	for _, shape := range shapes {
		for rec := 0; rec < recurrences; rec++ {
			stmt, err := sqlparse.Shared().Parse(shape(rec))
			if err != nil {
				b.Fatal(err)
			}
			// Clone before splitting off the predicate: the shared parse
			// cache hands out one AST per distinct text, and recurrence
			// literals can collide (2+l%3 repeats for l=0 and l=3).
			sel := sqlast.CloneSelect(stmt.(*sqlast.Select))
			pred := sel.Where
			sel.Where = nil
			cases = append(cases, preparedCase{base: sel, pred: pred})
		}
	}

	run := func(b *testing.B, canonical bool) {
		db := build()
		b.ReportAllocs()
		b.ResetTimer()
		var novel, repeated int
		var rows int64
		for i := 0; i < b.N; i++ {
			pairs := feedback.NewPairTracker()
			memo := oracle.NewPlanEnumMemo()
			novel, repeated, rows = 0, 0, -db.TotalCost()
			for seq, pc := range cases {
				res := oracle.PlanDiffCase(db, &oracle.Case{
					Base: pc.base, Pred: pc.pred, Seq: seq,
					Pairs: pairs, Enum: memo, CanonicalPlans: canonical,
				})
				if res.Outcome != oracle.OK {
					b.Fatalf("case %d: %v %v %s", seq, res.Outcome, res.Err, res.Detail)
				}
				novel += res.PairsNovel
				repeated += res.PairsRepeated
			}
			rows += db.TotalCost()
		}
		b.ReportMetric(float64(novel), "novel-pairs/op")
		b.ReportMetric(float64(repeated), "repeated-pairs/op")
		b.ReportMetric(float64(rows), "rows-touched/op")
		b.ReportMetric(float64(novel)/float64(rows)*1000, "novel-pairs/krows")
	}
	b.Run("scheduled", func(b *testing.B) { run(b, false) })
	b.Run("canonical", func(b *testing.B) { run(b, true) })
}

// BenchmarkCompositeProbe measures the composite-key span against the
// leading-column-only span on the same data: 16384 rows, 16 leading
// keys × 128 trailing keys. The filter "c0 = 7 AND c1 < 8" narrows to
// 64 rows under the composite index but to 1024 under the
// single-column index — the acceptance bar is the composite span
// touching at most a tenth of the leading-only span's rows.
func BenchmarkCompositeProbe(b *testing.B) {
	setup := func(index string) *engine.DB {
		db := engine.Open(dialect.MustGet("sqlite"), engine.WithoutFaults())
		if err := db.Exec("CREATE TABLE t (c0 INTEGER, c1 INTEGER, c2 TEXT)"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 16384; i += 16 {
			sql := "INSERT INTO t VALUES "
			for j := i; j < i+16; j++ {
				if j > i {
					sql += ", "
				}
				sql += fmt.Sprintf("(%d, %d, 'r%d')", j%16, (j/16)%128, j)
			}
			if err := db.Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Exec(index); err != nil {
			b.Fatal(err)
		}
		return db
	}
	const q = "SELECT * FROM t WHERE c0 = 7 AND c1 < 8"
	run := func(b *testing.B, db *engine.DB) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 64 {
				b.Fatalf("got %d rows, want 64", len(res.Rows))
			}
		}
		b.ReportMetric(float64(db.LastCost()), "rows-touched/op")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	}
	b.Run("composite", func(b *testing.B) { run(b, setup("CREATE INDEX i0 ON t (c0, c1)")) })
	b.Run("leading", func(b *testing.B) { run(b, setup("CREATE INDEX i0 ON t (c0)")) })
}

// BenchmarkColumnarScan measures the batch executor against the
// row-at-a-time reference on a full-scan filter whose conjuncts are all
// vectorizable (column-op-literal): 16384 rows, no usable index, a
// two-conjunct WHERE. The "batch" arm precomputes lane verdicts over the
// selection bitmap in chunks of the default width; "row" runs the
// identical state with WithBatchSize(-1). rows-touched/op must be
// identical across arms — the batch executor changes throughput and
// allocation, never the charged cost.
func BenchmarkColumnarScan(b *testing.B) {
	setup := func(opts ...engine.Option) *engine.DB {
		db := engine.Open(dialect.MustGet("sqlite"), append([]engine.Option{engine.WithoutFaults()}, opts...)...)
		if err := db.Exec("CREATE TABLE t (c0 INTEGER, c1 INTEGER, c2 TEXT)"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 16384; i += 16 {
			sql := "INSERT INTO t VALUES "
			for j := i; j < i+16; j++ {
				if j > i {
					sql += ", "
				}
				sql += fmt.Sprintf("(%d, %d, 'r%d')", j%512, j%97, j)
			}
			if err := db.Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	const q = "SELECT c2 FROM t WHERE c0 > 255 AND c1 <= 48"
	run := func(b *testing.B, db *engine.DB) {
		b.ReportAllocs()
		b.ResetTimer()
		var rows int
		for i := 0; i < b.N; i++ {
			res, err := db.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			rows = len(res.Rows)
		}
		b.ReportMetric(float64(rows), "rows/query")
		b.ReportMetric(float64(db.LastCost()), "rows-touched/op")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	}
	b.Run("batch", func(b *testing.B) { run(b, setup()) })
	b.Run("row", func(b *testing.B) { run(b, setup(engine.WithBatchSize(-1))) })
}

// BenchmarkCoveringIndexSelect measures covering-index projection against
// heap projection on the same composite-indexed state: 16384 rows over
// 16 leading × 128 trailing keys, a query whose every referenced column
// sits in the index key. The "covering" arm serves results straight from
// the ordered-store entries; "heap" runs the identical state under
// PlanSpec{CoveringOff} — the PlanDiff nocover axis. rows-touched/op is
// the engine's LastCost: the covering arm charges only the index-store
// rows the span visits, with zero projection-evaluation cost on top.
func BenchmarkCoveringIndexSelect(b *testing.B) {
	setup := func(opts ...engine.Option) *engine.DB {
		db := engine.Open(dialect.MustGet("sqlite"), append([]engine.Option{engine.WithoutFaults()}, opts...)...)
		if err := db.Exec("CREATE TABLE t (a INTEGER, b INTEGER, c TEXT)"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 16384; i += 16 {
			sql := "INSERT INTO t VALUES "
			for j := i; j < i+16; j++ {
				if j > i {
					sql += ", "
				}
				sql += fmt.Sprintf("(%d, %d, 'r%d')", j%16, (j/16)%128, j)
			}
			if err := db.Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Exec("CREATE INDEX iab ON t (a, b)"); err != nil {
			b.Fatal(err)
		}
		return db
	}
	const q = "SELECT a, b FROM t WHERE a = 7 ORDER BY b"
	run := func(b *testing.B, db *engine.DB) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1024 {
				b.Fatalf("got %d rows, want 1024", len(res.Rows))
			}
		}
		b.ReportMetric(float64(db.LastCost()), "rows-touched/op")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	}
	b.Run("covering", func(b *testing.B) { run(b, setup()) })
	b.Run("heap", func(b *testing.B) {
		run(b, setup(engine.WithPlanSpec(engine.PlanSpec{CoveringOff: true})))
	})
}
