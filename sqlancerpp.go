// Package sqlancerpp is a Go implementation of SQLancer++ — the
// automated DBMS-testing platform of "Scaling Automated Database System
// Testing" (ASPLOS 2026) — together with the full substrate it needs to
// run self-contained: an in-memory SQL engine configurable with 19 DBMS
// dialect profiles and a ground-truth fault-injection catalogue.
//
// The platform finds logic bugs with the TLP and NoREC metamorphic test
// oracles, driven by an adaptive statement generator that learns, via
// Bayesian inference over execution feedback, which SQL features the
// system under test supports. Bug-inducing cases are prioritized by
// feature-set subsumption and automatically reduced.
//
// Quick start:
//
//	report, err := sqlancerpp.Run(sqlancerpp.Options{
//		DBMS:      "cratedb",
//		TestCases: 20000,
//	})
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package sqlancerpp

import (
	"fmt"
	"time"

	"sqlancerpp/internal/baseline"
	"sqlancerpp/internal/chaos"
	"sqlancerpp/internal/core/campaign"
	"sqlancerpp/internal/core/oracle"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/feature"
)

// Options configures a testing campaign.
type Options struct {
	// DBMS names the dialect under test (see Dialects).
	DBMS string
	// Oracle selects the test oracles: "" (or "both"/"all") for every
	// registered oracle — TLP, TLPComposed, TLPAggregate, NoREC, and
	// PlanDiff — "tlp-family" for the TLP variants, or a comma-separated
	// list of registry names (e.g. "tlp,plandiff"); registered names
	// resolve to themselves, so "tlp" is classic TLP alone and "norec"
	// is NoREC.
	Oracle string
	// TestCases is the number of oracle checks (default 1000).
	TestCases int
	// Seed makes the campaign deterministic.
	Seed int64
	// NoFeedback disables the adaptive validity feedback
	// ("SQLancer++ Rand" in the paper).
	NoFeedback bool
	// Baseline uses the hand-written per-DBMS generator stand-in
	// ("SQLancer" in the paper) instead of the adaptive generator.
	Baseline bool
	// Reduce runs the test-case reducer on prioritized logic bugs.
	Reduce bool
	// MaxPlans caps the equivalent plans the PlanDiff oracle diffs per
	// query (the -plans flag): 0 selects the oracle default, negative is
	// unlimited. With the plan-pair scheduler on (the default), the cap
	// buys unseen (query shape, plan spec) pairs first; see
	// Report.PlanPairsNovel / PlanPairsRepeated.
	MaxPlans int
	// NoPlanPairSched disables the plan-pair novelty scheduler (the
	// -pairsched=false flag): PlanDiff truncates the canonical plan
	// enumeration order instead of ranking unseen pairs first.
	NoPlanPairSched bool
	// PlanPairState seeds the plan-pair tracker with a previous run's
	// Report.PlanPairState, so a warm-started campaign skips pairs it
	// already diffed.
	PlanPairState []byte
	// Threshold is the Bayesian minimum success probability p
	// (default 0.05 for scaled runs; the paper uses 0.01).
	Threshold float64
	// FeedbackState seeds the generator with previously learned feature
	// probabilities (Report.FeedbackState of an earlier run).
	FeedbackState []byte
	// CleanEngine disables fault injection — useful for soundness checks;
	// a campaign on a clean engine must report zero bugs.
	CleanEngine bool
	// Workers > 0 runs the campaign as deterministic parallel shards
	// (one shard per database epoch, up to Workers executing
	// concurrently): the same seed produces a byte-identical report for
	// every Workers value, including 1. 0 keeps the serial runner, whose
	// validity feedback flows across database epochs. See DESIGN.md.
	Workers int
	// RowBudget caps the rows any single statement may touch before the
	// engine aborts it deterministically; budget-exceeded cases are
	// skipped identically at every worker count and tallied in
	// Report.BudgetExceeded, never reported as bugs. 0 disables.
	RowBudget int64
	// BatchSize sets the engine's columnar batch width (the -batch flag):
	// 0 selects the engine default, negative selects the row-at-a-time
	// reference executor. Reports are byte-identical at every width.
	BatchSize int
	// Checkpoint, when set, persists campaign progress to this file after
	// every completed shard (implies the sharded runner, with at least
	// one worker) and removes it when the campaign completes.
	Checkpoint string
	// Resume continues an interrupted campaign from Checkpoint; the final
	// report is byte-identical to an uninterrupted run. A missing
	// checkpoint file starts fresh.
	Resume bool
	// Interrupt, when closed, stops a sharded campaign at the next shard
	// boundary: Run returns ErrInterrupted after checkpointing every
	// completed shard.
	Interrupt <-chan struct{}
	// CaseTimeout bounds each test case's wall-clock time (the -timeout
	// flag): a watchdog cancels cases that exceed it, reporting them as
	// "hang"-class bugs with their seed (Report.Hangs). 0 disables.
	CaseTimeout time.Duration
	// ShardRetries is how many times the supervisor re-runs a failing
	// shard before quarantining it and completing the campaign degraded
	// (the -shard-retries flag): 0 selects the default (2), negative
	// disables retries. Quarantined seed ranges are reported for offline
	// replay; fault-free runs are unaffected.
	ShardRetries int
	// Chaos injects deterministic infrastructure faults (the -chaos
	// flag; see internal/chaos for the spec grammar) — a test harness
	// for the harness itself. Off by default; campaign findings are
	// unaffected by injection, only the robustness counters move.
	Chaos string
}

// ErrInterrupted is returned by Run when the Interrupt channel closes
// before the campaign finishes. Progress up to the last completed shard
// is in the checkpoint file.
var ErrInterrupted = campaign.ErrInterrupted

// Bug is one prioritized bug-inducing test case.
type Bug struct {
	ID      int
	Class   string // "logic", "crash", "error", "perf", or "harness"
	Oracle  string // "TLP" or "NoREC" (empty for non-oracle bugs)
	Setup   []string
	Queries []string
	Reduced []string // reduced statement sequence, when reduction ran
	Detail  string
	// PlanSpec is the serialized losing plan of a PlanDiff bug (the
	// enumerated plan whose result diverged from the baseline plan).
	PlanSpec string
	// Features is the SQL feature set the prioritizer used.
	Features []string
	// GroundTruthFaults lists the injected fault IDs the case triggered
	// (empty only if the engine itself misbehaved).
	GroundTruthFaults []string
}

// Report summarizes a campaign.
type Report struct {
	DBMS string
	Mode string

	Detected    int // all bug-inducing test cases
	Prioritized int // cases the prioritizer reported
	UniqueBugs  int // distinct ground-truth faults among detected cases

	TestCases    int
	ValidCases   int
	ValidityRate float64

	Bugs []Bug

	// FeedbackState holds the learned feature probabilities for reuse.
	FeedbackState []byte
	// UnsupportedFeatures lists features learned to be unsupported.
	UnsupportedFeatures []string
	// FalsePositives counts bug cases with no ground-truth fault; any
	// non-zero value indicates a defect in this library.
	FalsePositives int
	// PlanPairsNovel and PlanPairsRepeated count the plan specs the
	// PlanDiff oracle executed whose (query shape, plan spec) pair its
	// tracker had not / had already diffed; the ratio shows the novelty
	// scheduler stretching the MaxPlans budget.
	PlanPairsNovel    int
	PlanPairsRepeated int
	// PlanPairState holds the plan-pair tracker's final state for reuse
	// via Options.PlanPairState (nil with the scheduler disabled).
	PlanPairState []byte
	// HarnessCrashes counts Go panics recovered at the campaign's
	// containment boundary and converted into "harness"-class bug cases.
	HarnessCrashes int
	// BudgetExceeded counts statements aborted by the deterministic
	// Options.RowBudget execution budget.
	BudgetExceeded int
	// Hangs counts cases canceled by the Options.CaseTimeout watchdog
	// and reported as "hang"-class bugs.
	Hangs int
	// ShardRetries counts shard attempts that failed and were retried;
	// ShardsQuarantined counts shards abandoned after exhausting their
	// retries (the campaign completed degraded). QuarantinedShards holds
	// each abandoned shard's replay recipe.
	ShardRetries      int
	ShardsQuarantined int
	QuarantinedShards []QuarantinedShard
	// CheckpointWriteFailures counts checkpoint saves that failed and
	// were degraded to a warning instead of aborting the campaign.
	CheckpointWriteFailures int
}

// QuarantinedShard identifies one abandoned shard's seed range — enough
// to replay its share of the campaign offline.
type QuarantinedShard struct {
	Shard     int
	Seed      int64
	TestCases int
	Err       string
}

// Run executes a testing campaign against a registered dialect.
func Run(o Options) (*Report, error) {
	d, err := dialect.Get(o.DBMS)
	if err != nil {
		return nil, err
	}
	if o.CleanEngine {
		d = d.Clone()
		d.Faults = nil
	}
	names, err := oracle.ParseNames(o.Oracle)
	if err != nil {
		return nil, fmt.Errorf("sqlancerpp: %w", err)
	}
	inj, err := chaos.Parse(o.Chaos, o.Seed)
	if err != nil {
		return nil, fmt.Errorf("sqlancerpp: %w", err)
	}
	cfg := campaign.Config{
		Dialect:          d,
		Oracles:          names,
		TestCases:        o.TestCases,
		Seed:             o.Seed,
		Threshold:        o.Threshold,
		ReduceBugs:       o.Reduce,
		MaxPlansPerQuery: o.MaxPlans,
		NoPlanPairSched:  o.NoPlanPairSched,
		RowBudget:        o.RowBudget,
		BatchSize:        o.BatchSize,
		FeedbackState:    o.FeedbackState,
		PlanPairState:    o.PlanPairState,
		CaseTimeout:      o.CaseTimeout,
		Chaos:            inj,
	}
	switch {
	case o.Baseline:
		cfg = baseline.Configure(cfg, d)
	case o.NoFeedback:
		cfg.Mode = campaign.Rand
	default:
		cfg.Mode = campaign.Adaptive
	}
	var rep *campaign.Report
	if o.Workers > 0 || o.Checkpoint != "" || o.Resume {
		// Checkpointing works at shard granularity, so it implies the
		// sharded runner even when Workers was left zero.
		rep, err = campaign.RunShardedOpts(cfg, campaign.ShardedOptions{
			Workers:         o.Workers,
			CheckpointPath:  o.Checkpoint,
			Resume:          o.Resume,
			Interrupt:       o.Interrupt,
			MaxShardRetries: o.ShardRetries,
		})
		if err != nil {
			return nil, err
		}
	} else {
		runner, err := campaign.New(cfg)
		if err != nil {
			return nil, err
		}
		rep, err = runner.Run()
		if err != nil {
			return nil, err
		}
	}
	out := &Report{
		DBMS:                rep.Dialect,
		Mode:                rep.Mode,
		Detected:            rep.Detected,
		Prioritized:         rep.Prioritized,
		UniqueBugs:          rep.UniqueGroundTruth,
		TestCases:           rep.TestCases,
		ValidCases:          rep.ValidCases,
		ValidityRate:        rep.ValidityRate(),
		FeedbackState:       rep.FeedbackState,
		UnsupportedFeatures: rep.Unsupported,
		FalsePositives:      rep.FalsePositives,
		PlanPairsNovel:      rep.PlanPairsNovel,
		PlanPairsRepeated:   rep.PlanPairsRepeated,
		PlanPairState:       rep.PlanPairState,
		HarnessCrashes:      rep.HarnessCrashes,
		BudgetExceeded:      rep.BudgetExceeded,
		Hangs:               rep.Hangs,
		ShardRetries:        rep.ShardRetries,
		ShardsQuarantined:   rep.ShardsQuarantined,

		CheckpointWriteFailures: rep.CheckpointWriteFailures,
	}
	for _, q := range rep.QuarantinedShards {
		out.QuarantinedShards = append(out.QuarantinedShards, QuarantinedShard{
			Shard: q.Shard, Seed: q.Seed, TestCases: q.TestCases, Err: q.Err,
		})
	}
	for _, b := range rep.Bugs {
		out.Bugs = append(out.Bugs, Bug{
			ID:                b.ID,
			Class:             string(b.Class),
			Oracle:            string(b.Oracle),
			Setup:             b.Setup,
			Queries:           b.Queries,
			Reduced:           b.Reduced,
			Detail:            b.Detail,
			PlanSpec:          b.PlanSpec,
			Features:          b.Features,
			GroundTruthFaults: b.Triggered,
		})
	}
	return out, nil
}

// Dialects returns the registered dialect names.
func Dialects() []string { return dialect.Names() }

// Oracles returns the registered oracle names in rotation-registry
// order (valid values for Options.Oracle, comma-separable).
func Oracles() []string {
	names := oracle.DefaultNames()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = string(n)
	}
	return out
}

// PaperDBMSs returns the 18 systems of the paper's Table 2.
func PaperDBMSs() []string {
	return append([]string(nil), dialect.PaperDBMSs...)
}

// DB is a handle to one simulated DBMS instance, for direct SQL use.
type DB struct {
	s *engine.DB
}

// Open creates an empty database with the named dialect's behavior,
// including its injected faults (pass clean=true for a pristine system).
func Open(dbms string, clean bool) (*DB, error) {
	d, err := dialect.Get(dbms)
	if err != nil {
		return nil, err
	}
	var opts []engine.Option
	if clean {
		opts = append(opts, engine.WithoutFaults())
	}
	return &DB{s: engine.Open(d, opts...)}, nil
}

// Exec runs a statement, discarding rows.
func (db *DB) Exec(sql string) error { return db.s.Exec(sql) }

// Query runs a statement and returns column names plus rendered rows.
func (db *DB) Query(sql string) (cols []string, rows [][]string, err error) {
	res, err := db.s.Query(sql)
	if err != nil {
		return nil, nil, err
	}
	rows = make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		row := make([]string, len(r))
		for j, v := range r {
			row[j] = v.Render()
		}
		rows[i] = row
	}
	return res.Columns, rows, nil
}

// TriggeredFaults reports the ground-truth fault IDs the last statement
// fired (evaluation use only).
func (db *DB) TriggeredFaults() []string { return db.s.TriggeredFaults() }

// DialectSpec describes a custom dialect derived from a base profile —
// the paper's core use case: a DBMS team (e.g. Vitess) pointing the
// platform at their own system with a few lines of configuration.
type DialectSpec struct {
	Name string
	// Base names the profile to derive from (e.g. "postgresql",
	// "sqlite", "mysql").
	Base string
	// RemoveFeatures / AddFeatures adjust the feature matrices; names are
	// statement keywords, clause keywords, operator spellings, function
	// names, or data types.
	RemoveFeatures []string
	AddFeatures    []string
	// RequiresRefresh marks CrateDB-style visibility semantics.
	RequiresRefresh bool
}

// RegisterDialect derives and registers a custom dialect.
func RegisterDialect(spec DialectSpec) error {
	base, err := dialect.Get(spec.Base)
	if err != nil {
		return err
	}
	d := base.Clone()
	d.Name = spec.Name
	d.DisplayName = spec.Name
	d.RequiresRefresh = spec.RequiresRefresh
	d.Faults = faults.NewSet(faults.ForDialect(spec.Name))
	for _, f := range spec.RemoveFeatures {
		delete(d.Statements, f)
		delete(d.Clauses, f)
		delete(d.Operators, f)
		delete(d.Functions, f)
		delete(d.Types, f)
	}
	for _, f := range spec.AddFeatures {
		switch {
		case engine.LookupFunc(f) != nil:
			d.Functions[f] = true
		case isStatementFeature(f):
			d.Statements[f] = true
		case f == feature.TypeInteger || f == feature.TypeText || f == feature.TypeBoolean:
			d.Types[f] = true
		default:
			// Clause keywords and operator spellings share a namespace;
			// set both, as lookups are per-map.
			d.Clauses[f] = true
			d.Operators[f] = true
		}
	}
	return dialect.Register(d)
}

func isStatementFeature(f string) bool {
	for _, s := range feature.Statements {
		if s == f {
			return true
		}
	}
	return f == feature.StmtDropTable || f == feature.StmtDropView ||
		f == feature.StmtDropIndex || f == feature.StmtReindex
}
